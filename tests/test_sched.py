"""Multi-tenant scheduler: tenants, EDF, WFQ, admission control.

Property tests pin the two invariants the serving layer leans on:
EDF never inverts two same-tenant deadlines, and WFQ deficit
accounting conserves work (net charge == executed work) under any
interleaving of selections and refunds.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.policy import predicted_backlog_makespan_s
from repro.serve.queue import RequestQueue, ServeRequest
from repro.serve.sched import (
    DEFAULT_TENANT,
    AdmissionController,
    QuotaExceeded,
    RateLimited,
    EDFQueue,
    REQUEST_COST,
    TenantConfig,
    TenantTable,
    WFQScheduler,
    deadline_key,
)
from repro.serve.sched.admission import (
    DEFAULT_RETRY_AFTER_S,
    _TokenBucket,
)


def make_request(request_id, tenant=DEFAULT_TENANT, deadline=None):
    return ServeRequest(spec=object(), request_id=request_id,
                        tenant=tenant, deadline=deadline)


# ----------------------------------------------------------------------
# Tenant policy
# ----------------------------------------------------------------------
class TestTenantConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantConfig(name="")
        with pytest.raises(ValueError):
            TenantConfig(name="t", weight=0)
        with pytest.raises(ValueError):
            TenantConfig(name="t", weight=math.inf)
        with pytest.raises(ValueError):
            TenantConfig(name="t", rate_rps=-1)
        with pytest.raises(ValueError):
            TenantConfig(name="t", burst=4)  # burst requires rate_rps
        with pytest.raises(ValueError):
            TenantConfig(name="t", max_in_flight=0)

    def test_bucket_capacity(self):
        assert TenantConfig(name="t", rate_rps=8).bucket_capacity == 8.0
        assert TenantConfig(name="t", rate_rps=0.25).bucket_capacity == 1.0
        assert TenantConfig(name="t", rate_rps=2,
                            burst=32).bucket_capacity == 32.0


class TestTenantTable:
    def test_from_json_document(self):
        table = TenantTable.from_json({
            "default_weight": 2,
            "tenants": {
                "latency": {"weight": 4, "rate_rps": 100, "burst": 8,
                            "max_in_flight": 16},
                "bulk": {"weight": 1},
            }})
        assert table.default_weight == 2.0
        assert table.get("latency").burst == 8.0
        assert table.get("bulk").weight == 1.0
        # Unknown tenants get the default policy at default_weight.
        assert table.get("stranger").weight == 2.0

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            TenantTable.from_json({"tenants": {"t": {"wieght": 2}}})

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": {"a": {"weight": 3}}}')
        assert TenantTable.from_file(path).get("a").weight == 3.0

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantTable([TenantConfig(name="a"), TenantConfig(name="a")])

    def test_adhoc_names_are_bounded(self, monkeypatch):
        monkeypatch.setattr("repro.serve.sched.tenants.MAX_ADHOC_TENANTS", 2)
        table = TenantTable()
        assert table.resolve_name("a") == "a"
        table.get("a")
        table.get("b")
        # Past the bound, unseen names fold into the default tenant so a
        # client-controlled header cannot grow server state.
        assert table.resolve_name("c") == DEFAULT_TENANT
        assert table.get("c").name == DEFAULT_TENANT
        # Already-memoized and explicit names keep their identity.
        assert table.resolve_name("a") == "a"


# ----------------------------------------------------------------------
# EDF
# ----------------------------------------------------------------------
class TestEDFQueue:
    def test_deadline_order(self):
        queue = EDFQueue()
        queue.push(make_request(0, deadline=3.0))
        queue.push(make_request(1, deadline=1.0))
        queue.push(make_request(2, deadline=2.0))
        assert [queue.pop().request_id for _ in range(3)] == [1, 2, 0]

    def test_no_deadline_degrades_to_fifo(self):
        queue = EDFQueue()
        for n in range(4):
            queue.push(make_request(n))
        assert [queue.pop().request_id for _ in range(4)] == [0, 1, 2, 3]

    def test_deadlines_beat_no_deadlines(self):
        queue = EDFQueue()
        queue.push(make_request(0))
        queue.push(make_request(1, deadline=9.0))
        assert queue.pop().request_id == 1

    def test_head_key_empty(self):
        assert EDFQueue().head_key() == (math.inf, -1)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(st.none(),
                              st.floats(min_value=0.0, max_value=1e6)),
                    min_size=1, max_size=40))
    def test_never_inverts_two_deadlines(self, deadlines):
        """Property: popping yields non-decreasing deadline keys — two
        same-tenant requests are never served deadline-inverted."""
        queue = EDFQueue()
        for n, deadline in enumerate(deadlines):
            queue.push(make_request(n, deadline=deadline))
        popped = [queue.pop() for _ in range(len(deadlines))]
        keys = [deadline_key(request) for request in popped]
        assert keys == sorted(keys)
        assert len(queue) == 0


# ----------------------------------------------------------------------
# WFQ
# ----------------------------------------------------------------------
class TestWFQScheduler:
    def make(self, **weights):
        table = TenantTable([TenantConfig(name=name, weight=weight)
                             for name, weight in weights.items()])
        return WFQScheduler(table)

    def test_share_tracks_weight_while_backlogged(self):
        sched = self.make(heavy=4, light=1)
        n = 0
        for _ in range(100):
            sched.push(make_request(n, tenant="heavy"))
            sched.push(make_request(n + 1, tenant="light"))
            n += 2
        served = [request.tenant for request in sched.select(100)]
        heavy = served.count("heavy")
        light = served.count("light")
        # 4:1 weights -> an 80/20 split of the first 100 selections.
        assert heavy == pytest.approx(80, abs=3)
        assert light == pytest.approx(20, abs=3)

    def test_work_conserving_when_one_lane_idle(self):
        sched = self.make(heavy=4, light=1)
        for n in range(10):
            sched.push(make_request(n, tenant="light"))
        # The weight-4 lane is idle: the light lane gets everything.
        assert len(sched.select(10)) == 10

    def test_idle_lane_banks_no_credit(self):
        sched = self.make(a=1, b=1)
        for n in range(20):
            sched.push(make_request(n, tenant="a"))
        sched.select(20)  # lane a's vtime advances to 20
        # b arrives late; it must not starve a for its idle 20 units.
        for n in range(20, 24):
            sched.push(make_request(n, tenant="a"))
            sched.push(make_request(n + 100, tenant="b"))
        served = [request.tenant for request in sched.select(8)]
        assert served.count("a") == 4
        assert served.count("b") == 4

    def test_edf_within_lane_fifo_across_none(self):
        sched = self.make(t=1)
        sched.push(make_request(0, tenant="t", deadline=5.0))
        sched.push(make_request(1, tenant="t", deadline=1.0))
        sched.push(make_request(2, tenant="t"))
        assert [r.request_id for r in sched.select(3)] == [1, 0, 2]

    def test_refund_returns_work(self):
        sched = self.make(t=2)
        sched.push(make_request(0, tenant="t"))
        sched.select(1)
        account = sched.accounting()["t"]
        assert account["charged"] == REQUEST_COST
        assert account["net"] == REQUEST_COST
        sched.refund("t")
        account = sched.accounting()["t"]
        assert account["refunded"] == REQUEST_COST
        assert account["net"] == 0.0
        assert account["vtime"] == pytest.approx(0.0)

    def test_drain_returns_arrival_order(self):
        sched = self.make(a=1, b=4)
        requests = [make_request(0, tenant="b", deadline=9.0),
                    make_request(1, tenant="a"),
                    make_request(2, tenant="b")]
        for request in requests:
            sched.push(request)
        assert [r.request_id for r in sched.drain()] == [0, 1, 2]
        assert sched.backlog == 0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.one_of(st.none(),
                            st.floats(min_value=0.0, max_value=100.0))),
        min_size=1, max_size=60),
        st.data())
    def test_accounting_conserves_work(self, arrivals, data):
        """Property: after any interleaving of pushes, selections and
        refunds, sum(charged) == executed selections * REQUEST_COST and
        sum(net) == (selections - refunds) * REQUEST_COST."""
        sched = self.make(a=1, b=2, c=5)
        selected = []
        for n, (tenant, deadline) in enumerate(arrivals):
            sched.push(make_request(n, tenant=tenant, deadline=deadline))
            if data.draw(st.booleans()):
                selected.extend(sched.select(data.draw(
                    st.integers(min_value=1, max_value=4))))
        selected.extend(sched.select(len(arrivals)))
        assert len(selected) == len(arrivals)  # everything pushed drains
        refunds = 0
        for request in selected:
            if data.draw(st.booleans()):
                sched.refund(request.tenant)
                refunds += 1
        accounts = sched.accounting()
        assert sum(row["charged"] for row in accounts.values()) == \
            pytest.approx(len(selected) * REQUEST_COST)
        assert sum(row["net"] for row in accounts.values()) == \
            pytest.approx((len(selected) - refunds) * REQUEST_COST)
        assert all(row["backlog"] == 0 for row in accounts.values())


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = _TokenBucket(rate=2.0, capacity=2.0)
        assert bucket.take(0.0) == 0.0
        assert bucket.take(0.0) == 0.0
        wait = bucket.take(0.0)
        assert wait == pytest.approx(0.5)
        # Half a second later one token has refilled.
        assert bucket.take(0.5) == 0.0
        assert bucket.take(0.5) > 0.0

    def test_capacity_caps_idle_accrual(self):
        bucket = _TokenBucket(rate=10.0, capacity=3.0)
        bucket.take(0.0)
        # A long idle gap refills to capacity, not rate * gap.
        assert bucket.take(100.0) == 0.0
        assert bucket.take(100.0) == 0.0
        assert bucket.take(100.0) == 0.0
        assert bucket.take(100.0) > 0.0


class TestAdmissionController:
    def table(self, **kwargs):
        return TenantTable([TenantConfig(name="t", **kwargs)])

    def test_rate_limit_rejects_with_retry_after(self):
        control = AdmissionController(self.table(rate_rps=1.0))
        control.admit("t", now=0.0)
        with pytest.raises(RateLimited) as info:
            control.admit("t", now=0.0)
        assert info.value.status == 429
        assert info.value.tenant == "t"
        assert info.value.retry_after_s == pytest.approx(1.0)
        # A rejected request holds no in-flight slot.
        assert control.in_flight("t") == 1

    def test_quota_rejects_until_release(self):
        control = AdmissionController(self.table(max_in_flight=1),
                                      makespan_fn=lambda: 2.5)
        control.admit("t", now=0.0)
        with pytest.raises(QuotaExceeded) as info:
            control.admit("t", now=0.0)
        assert info.value.status == 429
        assert info.value.retry_after_s == pytest.approx(2.5)
        control.release("t")
        control.admit("t", now=0.0)  # slot freed

    def test_unlimited_tenant_always_admits(self):
        control = AdmissionController(TenantTable())
        for n in range(100):
            control.admit("anyone", now=float(n) * 1e-6)
        assert control.in_flight("anyone") == 100

    def test_makespan_fallbacks(self):
        table = TenantTable()
        assert AdmissionController(table).predicted_makespan_s() \
            == DEFAULT_RETRY_AFTER_S
        raising = AdmissionController(
            table, makespan_fn=lambda: (_ for _ in ()).throw(RuntimeError))
        assert raising.predicted_makespan_s() == DEFAULT_RETRY_AFTER_S
        bogus = AdmissionController(table, makespan_fn=lambda: -3.0)
        assert bogus.predicted_makespan_s() == DEFAULT_RETRY_AFTER_S
        good = AdmissionController(table, makespan_fn=lambda: 0.75)
        assert good.predicted_makespan_s() == 0.75

    def test_snapshot_shape(self):
        control = AdmissionController(self.table(rate_rps=5.0))
        control.admit("t", now=0.0)
        row = control.snapshot()["t"]
        assert row["in_flight"] == 1
        assert row["tokens"] == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Queue integration + Retry-After arithmetic
# ----------------------------------------------------------------------
class TestQueueScheduling:
    def test_fair_queue_orders_same_tenant_by_deadline(self):
        queue = RequestQueue(max_depth=8)
        late = queue.put(object(), timeout_s=60.0)
        soon = queue.put(object(), timeout_s=1.0)
        batch = queue.get_batch(2, 0.0)
        assert [r.request_id for r in batch] == \
            [soon.request_id, late.request_id]

    def test_fifo_mode_keeps_arrival_order(self):
        queue = RequestQueue(max_depth=8, scheduling="fifo")
        late = queue.put(object(), timeout_s=60.0)
        soon = queue.put(object(), timeout_s=1.0)
        batch = queue.get_batch(2, 0.0)
        assert [r.request_id for r in batch] == \
            [late.request_id, soon.request_id]
        assert queue.accounting() == {}  # no WFQ accounting under fifo

    def test_admission_rejection_leaves_queue_untouched(self):
        table = TenantTable([TenantConfig(name="t", max_in_flight=1)])
        control = AdmissionController(table)
        queue = RequestQueue(max_depth=8, tenants=table, admission=control)
        request = queue.put(object(), tenant="t")
        with pytest.raises(QuotaExceeded):
            queue.put(object(), tenant="t")
        assert queue.depth == 1
        assert control.in_flight("t") == 1
        # Resolving the future releases the admission slot.
        queue.get_batch(1, 0.0)
        request.future.set_result("done")
        assert control.in_flight("t") == 0
        queue.put(object(), tenant="t")

    def test_overflow_carries_retry_after(self):
        from repro.serve.queue import QueueOverflow

        queue = RequestQueue(max_depth=1, retry_after_fn=lambda: 1.25)
        queue.put(object())
        with pytest.raises(QueueOverflow) as info:
            queue.put(object())
        assert info.value.retry_after_s == 1.25
        assert queue.shed == 1


class TestBacklogMakespan:
    def test_wave_arithmetic(self):
        assert predicted_backlog_makespan_s(0, 8, 0.05) == \
            pytest.approx(0.05)
        assert predicted_backlog_makespan_s(7, 8, 0.05) == \
            pytest.approx(0.05)
        assert predicted_backlog_makespan_s(8, 8, 0.05) == \
            pytest.approx(0.10)
        assert predicted_backlog_makespan_s(23, 8, 0.05) == \
            pytest.approx(0.15)

    def test_degenerate_inputs(self):
        assert predicted_backlog_makespan_s(-5, 0, 0.1) == \
            pytest.approx(0.1)
        assert predicted_backlog_makespan_s(10, 4, -1.0) == 0.0
