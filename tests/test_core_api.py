"""Unit and integration tests for the high-level NeuraChip facade."""

import numpy as np
import pytest

from repro.arch.config import TILE4
from repro.core.api import NeuraChip, design_space_sweep
from repro.datasets import load_dataset
from repro.sim.params import SimulationParams


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("facebook", max_nodes=80, seed=6)


@pytest.fixture(scope="module")
def chip():
    return NeuraChip("Tile-4")


class TestConstruction:
    def test_config_by_name_or_object(self):
        assert NeuraChip("Tile-4").config is TILE4
        assert NeuraChip(TILE4).config is TILE4

    def test_unknown_config_name(self):
        with pytest.raises(KeyError):
            NeuraChip("Tile-1024")

    def test_defaults(self, chip):
        assert chip.mapping_scheme == "drhm"
        assert chip.eviction_mode == "rolling"
        assert isinstance(chip.params, SimulationParams)


class TestRunSpGEMM:
    def test_cycle_mode_end_to_end(self, chip, tiny_graph):
        result = chip.run_spgemm(tiny_graph.adjacency_csr())
        dense = tiny_graph.adjacency_csr().to_dense()
        assert result.correct is True
        assert np.allclose(result.output.to_dense(), dense @ dense)
        assert result.report.cycles > 0
        assert result.power_w > 0
        assert result.energy_j > 0

    def test_functional_mode_skips_cycle_report(self, chip, tiny_graph):
        result = chip.run_spgemm(tiny_graph.adjacency_csr(), mode="functional")
        assert result.report is None
        assert result.correct is None
        assert result.power_w == 0.0
        dense = tiny_graph.adjacency_csr().to_dense()
        assert np.allclose(result.output.to_dense(), dense @ dense)

    def test_invalid_mode(self, chip, tiny_graph):
        with pytest.raises(ValueError):
            chip.run_spgemm(tiny_graph.adjacency_csr(), mode="magic")

    def test_accepts_dense_and_coo_operands(self, chip):
        rng = np.random.default_rng(0)
        a = (rng.random((20, 20)) < 0.2) * rng.random((20, 20))
        b = (rng.random((20, 20)) < 0.2) * rng.random((20, 20))
        result = chip.run_spgemm(a, b, mode="functional")
        assert np.allclose(result.output.to_dense(), a @ b)

    def test_rejects_unsupported_operand_type(self, chip):
        with pytest.raises(TypeError):
            chip.run_spgemm("not a matrix", mode="functional")

    def test_distinct_b_operand(self, chip, tiny_graph):
        a = tiny_graph.adjacency_csr()
        features = tiny_graph.features(dim=8, density=0.5)
        result = chip.run_spgemm(a, features, mode="functional")
        assert np.allclose(result.output.to_dense(),
                           a.to_dense() @ features.to_dense())

    def test_compile_only(self, chip, tiny_graph):
        program = chip.compile(tiny_graph.adjacency_csr(), tile_size=2)
        assert program.tile_size == 2
        program.validate()


class TestRunGCNLayer:
    def test_layer_output_matches_reference(self, chip, tiny_graph):
        result = chip.run_gcn_layer(tiny_graph, feature_dim=12, hidden_dim=6)
        reference = result.workload.reference_output()
        assert np.allclose(result.output, reference)
        assert result.aggregation.correct is True
        assert result.total_cycles > result.combination_cycles > 0

    def test_layer_on_raw_adjacency(self, chip, tiny_graph):
        result = chip.run_gcn_layer(tiny_graph.adjacency, feature_dim=8,
                                    hidden_dim=4, mode="functional")
        assert result.output.shape == (tiny_graph.n_nodes, 4)

    def test_metadata_records_dimensions(self, chip, tiny_graph):
        result = chip.run_gcn_layer(tiny_graph, feature_dim=10, hidden_dim=5,
                                    mode="functional")
        assert result.metadata == {"feature_dim": 10, "hidden_dim": 5}


class TestPowerIntegration:
    def test_power_breakdown_without_report(self, chip):
        breakdown = chip.power_breakdown()
        assert breakdown.total_area_mm2 == pytest.approx(2.37, abs=0.01)

    def test_power_breakdown_with_report_activity(self, chip, tiny_graph):
        result = chip.run_spgemm(tiny_graph.adjacency_csr(), verify=False)
        breakdown = chip.power_breakdown(result.report)
        full = chip.power_breakdown()
        assert breakdown.total_power_w <= full.total_power_w + 1e-9


class TestDesignSpaceSweep:
    def test_sweep_normalised_to_tile4(self, tiny_graph):
        sweep = design_space_sweep(tiny_graph.adjacency_csr(),
                                   configs=("Tile-4", "Tile-16"))
        assert set(sweep) == {"Tile-4", "Tile-16"}
        for metric, value in sweep["Tile-4"].items():
            assert value == pytest.approx(1.0), metric
        assert sweep["Tile-16"]["cycles"] < 1.0  # bigger chip finishes sooner

    def test_sweep_raw_values(self, tiny_graph):
        sweep = design_space_sweep(tiny_graph.adjacency_csr(),
                                   configs=("Tile-4",), normalize_to=None)
        metrics = sweep["Tile-4"]
        assert {"stall_cycles", "cpi", "ipc", "in_flight_instx", "power",
                "busy_cycles", "cycles", "gops"} <= set(metrics)
        assert metrics["cycles"] > 0

    def test_sweep_on_analytic_backend(self, tiny_graph):
        sweep = design_space_sweep(tiny_graph.adjacency_csr(),
                                   configs=("Tile-4", "Tile-16"),
                                   backend="analytic")
        assert set(sweep) == {"Tile-4", "Tile-16"}
        assert sweep["Tile-4"]["cycles"] == pytest.approx(1.0)

    def test_sweep_functional_backend_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="no timing report"):
            design_space_sweep(tiny_graph.adjacency_csr(),
                               configs=("Tile-4",), backend="functional")

    def test_sweep_skips_metrics_with_zero_baseline(self, tiny_graph,
                                                    monkeypatch):
        # Force a zero baseline metric and check it is omitted, not mapped
        # to a silent 0.0 (the pre-refactor behaviour).
        import repro.core.api as api

        original = api.NeuraChip.run_spgemm

        def zero_gops(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            result.report.gops = 0.0
            return result

        monkeypatch.setattr(api.NeuraChip, "run_spgemm", zero_gops)
        sweep = design_space_sweep(tiny_graph.adjacency_csr(),
                                   configs=("Tile-4", "Tile-16"))
        assert "gops" not in sweep["Tile-16"]
        assert "cycles" in sweep["Tile-16"]

    def test_sweep_raises_on_zero_baseline_when_asked(self, tiny_graph,
                                                      monkeypatch):
        import repro.core.api as api

        original = api.NeuraChip.run_spgemm

        def zero_gops(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            result.report.gops = 0.0
            return result

        monkeypatch.setattr(api.NeuraChip, "run_spgemm", zero_gops)
        with pytest.raises(ValueError, match="gops"):
            design_space_sweep(tiny_graph.adjacency_csr(),
                               configs=("Tile-4", "Tile-16"),
                               on_missing_base="raise")

    def test_sweep_invalid_policy_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="on_missing_base"):
            design_space_sweep(tiny_graph.adjacency_csr(),
                               configs=("Tile-4",),
                               on_missing_base="ignore")
