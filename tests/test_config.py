"""Unit tests for the NeuraChip configurations (Tables 2 and 3)."""

import pytest

from repro.arch.config import (
    GNN_TILE16,
    TILE16,
    TILE4,
    TILE64,
    all_spgemm_configs,
    get_config,
)


class TestLookup:
    def test_get_config_by_name(self):
        assert get_config("Tile-16") is TILE16
        assert get_config("tile-4") is TILE4
        assert get_config("TILE-64") is TILE64
        assert get_config("GNN-Tile-16") is GNN_TILE16

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            get_config("Tile-128")

    def test_all_spgemm_configs_order(self):
        assert [c.name for c in all_spgemm_configs()] == ["Tile-4", "Tile-16", "Tile-64"]


class TestTable3Rows:
    """Checks against the paper's Table 3 values."""

    @pytest.mark.parametrize("config,cores,mems,routers,pipelines,hash_engines,"
                             "comparators,hashpad_mb", [
        (TILE4, 8, 8, 32, 32, 16, 32, 0.75),
        (TILE16, 32, 32, 64, 128, 128, 512, 3.0),
        (TILE64, 128, 128, 256, 512, 1024, 8192, 12.0),
    ])
    def test_totals_match_paper(self, config, cores, mems, routers, pipelines,
                                hash_engines, comparators, hashpad_mb):
        rows = config.table3_rows()
        assert rows["Total NeuraCores"] == cores
        assert rows["Total NeuraMems"] == mems
        assert rows["Total Routers"] == routers
        assert rows["Total Pipelines"] == pipelines
        assert rows["Total Hash-Engines"] == hash_engines
        assert rows["Total TAG comparators"] == comparators
        assert rows["Total HashPad Size (MB)"] == hashpad_mb

    def test_common_fixed_values(self):
        for config in all_spgemm_configs():
            rows = config.table3_rows()
            assert rows["Tile Count"] == 8
            assert rows["Memory Controller Count"] == 8
            assert rows["Max frequency (GHz)"] == 1.0


class TestTable2Rows:
    def test_register_file_scaling(self):
        assert TILE4.core.register_file_bits == 512
        assert TILE16.core.register_file_bits == 1024
        assert TILE64.core.register_file_bits == 2048

    def test_hashlines_per_neuramem(self):
        assert TILE4.mem.hashlines == 4096
        assert TILE16.mem.hashlines == 2048
        assert TILE64.mem.hashlines == 2048

    def test_accumulator_scaling(self):
        assert (TILE4.mem.accumulators, TILE16.mem.accumulators,
                TILE64.mem.accumulators) == (128, 256, 512)

    def test_table2_rows_shape(self):
        rows = TILE16.table2_rows()
        assert rows["NeuraCore/Multipliers"] == 4
        assert rows["NeuraMem/Hash-Engines"] == 4
        assert len(rows) == 10


class TestDerivedAndHelpers:
    def test_peak_bandwidth_bytes_per_cycle(self):
        assert TILE16.peak_bandwidth_bytes_per_cycle == pytest.approx(128.0)

    def test_with_mapping_returns_copy(self):
        modified = TILE16.with_mapping("ring")
        assert modified.mapping_scheme == "ring"
        assert TILE16.mapping_scheme == "drhm"

    def test_with_mmh_tile_returns_copy(self):
        modified = TILE16.with_mmh_tile(8)
        assert modified.mmh_tile_size == 8
        assert TILE16.mmh_tile_size == 4

    def test_gnn_config_peak_performance(self):
        assert GNN_TILE16.peak_gflops == 8192.0
        assert GNN_TILE16.total_cores == 8 * 256

    def test_peak_gflops_ordering(self):
        assert TILE4.peak_gflops < TILE16.peak_gflops < TILE64.peak_gflops
