"""The legacy entry points: thin deprecation shims forwarding to Session."""

import warnings

import numpy as np
import pytest

from repro.core import (
    BatchReport,
    NeuraChip,
    Session,
    SpGEMMSpec,
    design_space_sweep,
)
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=80, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def chip():
    return NeuraChip("Tile-4")


class TestRunSpgemmShim:
    def test_warns_and_forwards(self, chip, wiki):
        with pytest.deprecated_call(match="run_spgemm is deprecated"):
            legacy = chip.run_spgemm(wiki, backend="analytic")
        with Session(chip, backend="analytic") as session:
            modern = session.run(SpGEMMSpec(a=wiki))
        assert legacy.report.cycles == modern.metrics["cycles"]
        assert legacy.program.total_partial_products == \
            modern.metrics["partial_products"]
        assert np.allclose(legacy.output.to_dense(), modern.output.to_dense())

    def test_invalid_mode_still_raises_value_error(self, chip, wiki):
        with pytest.raises(ValueError):
            chip.run_spgemm(wiki, mode="magic")


class TestRunGcnShim:
    def test_warns_and_returns_legacy_result(self, chip):
        dataset = load_dataset("cora", max_nodes=64, seed=6)
        with pytest.deprecated_call(match="run_gcn_layer is deprecated"):
            result = chip.run_gcn_layer(dataset, feature_dim=8, hidden_dim=4,
                                        backend="analytic")
        assert result.output.shape == (dataset.n_nodes, 4)
        assert result.total_cycles > result.combination_cycles > 0


class TestRunBatchShim:
    def test_warns_and_forwards(self, chip, wiki):
        with pytest.deprecated_call(match="run_batch is deprecated"):
            report = chip.run_batch([wiki, wiki], backend="analytic")
        assert isinstance(report, BatchReport)
        assert report.n_jobs == 2
        assert report.cache_hits == 1
        assert report.as_rows()[1]["cache_hit"] is True

    def test_forwards_executor_through_queue(self, chip, wiki):
        from repro.core.runner import WorkloadQueue

        queue = WorkloadQueue().add_spgemm(wiki).add_spgemm(wiki)
        report = queue.run(chip, backend="analytic", executor="thread",
                           workers=2)
        assert report.executor == "thread"
        assert report.n_jobs == 2


class TestWarningAttribution:
    """Every shim's DeprecationWarning must point at the *caller's* file,
    not at shim internals (a fixed stacklevel breaks whenever an entry
    point is reached through another repro-internal frame)."""

    @staticmethod
    def deprecation_filename(invoke) -> str:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            invoke()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations, "shim emitted no DeprecationWarning"
        return deprecations[0].filename

    def test_run_spgemm_attributed_to_caller(self, chip, wiki):
        filename = self.deprecation_filename(
            lambda: chip.run_spgemm(wiki, backend="analytic"))
        assert filename == __file__

    def test_run_gcn_layer_attributed_to_caller(self, chip):
        dataset = load_dataset("cora", max_nodes=48, seed=6)
        filename = self.deprecation_filename(
            lambda: chip.run_gcn_layer(dataset, feature_dim=4, hidden_dim=2,
                                       backend="analytic"))
        assert filename == __file__

    def test_run_batch_attributed_to_caller(self, chip, wiki):
        filename = self.deprecation_filename(
            lambda: chip.run_batch([wiki], backend="analytic"))
        assert filename == __file__

    def test_design_space_sweep_attributed_to_caller(self, wiki):
        filename = self.deprecation_filename(
            lambda: design_space_sweep(wiki, configs=("Tile-4",),
                                       backend="analytic"))
        assert filename == __file__


class TestSweepShim:
    def test_warns_and_matches_session_sweep(self, wiki):
        from repro.core import SweepSpec

        with pytest.deprecated_call(match="design_space_sweep is deprecated"):
            legacy = design_space_sweep(wiki, configs=("Tile-4", "Tile-16"),
                                        backend="analytic")
        with Session("Tile-4", backend="analytic") as session:
            modern = session.run(SweepSpec(
                a=wiki, configs=("Tile-4", "Tile-16"))).legacy
        assert legacy == modern
