"""Columnar compiler pipeline: equivalence with the loop reference,
lazy materialization, offset-overflow detection, and array serialization."""

import pickle

import numpy as np
import pytest

from repro.arch.config import TILE4
from repro.backends import get_backend
from repro.backends.base import ExecutionContext
from repro.compiler.lowering import (
    _OFFSET_LIMIT,
    _require_offset,
    compile_spgemm,
    compile_spgemm_loop,
)
from repro.sim.functional import FunctionalAccelerator
from repro.sim.params import SimulationParams
from repro.sparse.convert import coo_to_csr, csr_to_csc
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import symbolic_spgemm, symbolic_spgemm_from_csc


def random_csr(n_rows: int, n_cols: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    nnz = max(1, int(n_rows * n_cols * density))
    coo = COOMatrix(rng.integers(0, n_rows, size=nnz),
                    rng.integers(0, n_cols, size=nnz),
                    rng.random(nnz) + 0.1,
                    (n_rows, n_cols)).sum_duplicates()
    return coo_to_csr(coo)


#: (A shape, B cols, densities, seed) cases covering square/rectangular
#: operands, empty rows/columns, and a hyper-sparse pairing.
CASES = [
    ((24, 18), 14, (0.15, 0.2), 0),
    ((31, 9), 23, (0.3, 0.12), 1),
    ((12, 40), 8, (0.05, 0.25), 2),
    ((50, 50), 50, (0.02, 0.02), 3),
]


def compiled_pair(case, tile_size):
    (n, m), p, (da, db), seed = case
    a = random_csr(n, m, da, seed)
    b = random_csr(m, p, db, seed + 100)
    a_csc = csr_to_csc(a)
    loop = compile_spgemm_loop(a_csc, b, tile_size=tile_size, source="probe")
    columnar = compile_spgemm(a_csc, b, tile_size=tile_size, source="probe")
    return a, b, loop, columnar


class TestColumnarEquivalence:
    """The vectorized compiler must reproduce the loop compiler exactly."""

    @pytest.mark.parametrize("tile_size", [1, 2, 4, 8])
    @pytest.mark.parametrize("case", CASES, ids=[str(i) for i in range(len(CASES))])
    def test_byte_identical_encodings_and_counts(self, case, tile_size):
        _a, _b, loop, columnar = compiled_pair(case, tile_size)
        assert columnar.n_instructions == loop.n_instructions
        assert columnar.total_partial_products == loop.total_partial_products
        assert columnar.output_nnz == loop.output_nnz
        assert columnar.metadata["n_row_groups"] == loop.metadata["n_row_groups"]
        assert columnar.encode_binary() == loop.encode_binary()

    @pytest.mark.parametrize("tile_size", [1, 2, 4, 8])
    @pytest.mark.parametrize("case", CASES, ids=[str(i) for i in range(len(CASES))])
    def test_macro_op_streams_identical(self, case, tile_size):
        _a, _b, loop, columnar = compiled_pair(case, tile_size)
        assert len(columnar.mmh_ops) == len(loop.mmh_ops)
        for materialized, reference in zip(columnar.mmh_ops, loop.mmh_ops):
            assert materialized == reference

    @pytest.mark.parametrize("tile_size", [1, 2, 4, 8])
    def test_counter_and_address_views_identical(self, tile_size):
        _a, _b, loop, columnar = compiled_pair(CASES[0], tile_size)
        assert columnar.counters == loop.counters
        assert columnar.output_addrs == loop.output_addrs

    @pytest.mark.parametrize("tile_size", [1, 2, 4, 8])
    def test_hacc_expansion_identical(self, tile_size):
        _a, _b, loop, columnar = compiled_pair(CASES[1], tile_size)
        for op_c, op_l in zip(columnar.mmh_ops, loop.mmh_ops):
            assert columnar.expand_haccs(op_c) == loop.expand_haccs(op_l)

    def test_validate_passes_on_columnar_program(self):
        _a, _b, _loop, columnar = compiled_pair(CASES[0], 4)
        columnar.validate()

    def test_reference_results_bitwise_equal(self):
        a, b, loop, columnar = compiled_pair(CASES[2], 4)
        np.testing.assert_array_equal(columnar.reference_result(),
                                      loop.reference_result())
        assert np.allclose(columnar.reference_result(),
                           a.to_dense() @ b.to_dense())

    @pytest.mark.parametrize("tile_size", [1, 4])
    def test_functional_sim_outputs_identical(self, tile_size):
        _a, _b, loop, columnar = compiled_pair(CASES[0], tile_size)
        accelerator = FunctionalAccelerator(TILE4)
        report_loop = accelerator.run(loop)
        report_columnar = accelerator.run(columnar)
        np.testing.assert_array_equal(report_columnar.output, report_loop.output)
        assert np.array_equal(report_columnar.per_mem_haccs,
                              report_loop.per_mem_haccs)
        assert report_columnar.spills == report_loop.spills

    def test_cycle_sim_identical(self):
        a = random_csr(16, 16, 0.18, seed=9)
        a_csc = csr_to_csc(a)
        loop = compile_spgemm_loop(a_csc, a, tile_size=4)
        columnar = compile_spgemm(a_csc, a, tile_size=4)
        backend = get_backend("cycle")
        ctx = ExecutionContext(config=TILE4, params=SimulationParams(),
                               mapping_scheme=TILE4.mapping_scheme)
        result_loop = backend.execute(loop, ctx, a_csr=a, b_csr=a, verify=True)
        result_columnar = backend.execute(columnar, ctx, a_csr=a, b_csr=a,
                                          verify=True)
        assert result_columnar.report.cycles == result_loop.report.cycles
        assert result_columnar.report.correct and result_loop.report.correct
        np.testing.assert_array_equal(result_columnar.output.to_dense(),
                                      result_loop.output.to_dense())

    def test_empty_operands(self):
        a = CSRMatrix.empty((8, 8))
        program = compile_spgemm(csr_to_csc(a), a)
        assert program.n_instructions == 0
        assert program.total_partial_products == 0
        assert program.metadata["n_row_groups"] == 0
        assert list(program.iter_mmh_ops()) == []
        assert program.encode_binary() == b""


class TestColumnarSymbolic:
    def test_csr_and_csc_passes_share_arrays(self):
        a = random_csr(20, 16, 0.15, seed=1)
        b = random_csr(16, 12, 0.2, seed=2)
        from_csr = symbolic_spgemm(a, b)
        from_csc = symbolic_spgemm_from_csc(csr_to_csc(a), b)
        assert np.array_equal(from_csr.indptr, from_csc.indptr)
        assert np.array_equal(from_csr.indices, from_csc.indices)
        assert np.array_equal(from_csr.counts, from_csc.counts)

    def test_counts_sum_to_partial_products(self):
        a = random_csr(20, 16, 0.15, seed=1)
        b = random_csr(16, 12, 0.2, seed=2)
        symbolic = symbolic_spgemm(a, b)
        assert int(symbolic.counts.sum()) == symbolic.total_partial_products

    def test_counters_for_row_tolerates_out_of_range_rows(self):
        a = random_csr(10, 10, 0.2, seed=6)
        symbolic = symbolic_spgemm(a, a)
        assert symbolic.counters_for_row(10_000) == {}
        assert symbolic.counters_for_row(-1) == {}

    def test_flat_keys_are_strictly_increasing(self):
        a = random_csr(20, 16, 0.15, seed=4)
        b = random_csr(16, 12, 0.2, seed=5)
        keys = symbolic_spgemm(a, b).flat_keys()
        assert np.all(np.diff(keys) > 0)

    def test_chunked_reduction_matches_single_pass(self, monkeypatch):
        """With the chunk cap forced tiny, the memory-bounded chunk-merge
        path must reduce to exactly the same arrays as the one-shot pass."""
        import repro.sparse.symbolic as symbolic_module

        a = random_csr(30, 24, 0.2, seed=12)
        b = random_csr(24, 18, 0.25, seed=13)
        whole = symbolic_spgemm(a, b)
        monkeypatch.setattr(symbolic_module,
                            "SYMBOLIC_CHUNK_PARTIAL_PRODUCTS", 7)
        chunked = symbolic_spgemm(a, b)
        assert np.array_equal(chunked.indptr, whole.indptr)
        assert np.array_equal(chunked.indices, whole.indices)
        assert np.array_equal(chunked.counts, whole.counts)
        assert chunked.total_partial_products == whole.total_partial_products


class TestLazyMaterialization:
    def test_analytic_backend_never_materializes_macro_ops(self):
        a = random_csr(40, 40, 0.1, seed=7)
        program = compile_spgemm(csr_to_csc(a), a, tile_size=4)
        backend = get_backend("analytic")
        ctx = ExecutionContext(config=TILE4, params=SimulationParams(),
                               mapping_scheme=TILE4.mapping_scheme)
        result = backend.execute(program, ctx, a_csr=a, b_csr=a, verify=False)
        assert result.report.cycles > 0
        assert program._mmh_ops is None, \
            "analytic backend materialized the macro-op stream"
        assert program._counters is None
        assert program._output_addrs is None
        assert result.report.counters["analytic.counter_max"] >= 1

    def test_program_rejects_partial_legacy_payload(self):
        from repro.compiler.program import Program

        with pytest.raises(ValueError, match="arrays"):
            Program(mmh_ops=[])  # counters / output_addrs missing
        with pytest.raises(ValueError, match="arrays"):
            Program()

    def test_iter_does_not_cache(self):
        a = random_csr(12, 12, 0.2, seed=8)
        program = compile_spgemm(csr_to_csc(a), a)
        ops = list(program.iter_mmh_ops())
        assert ops
        assert program._mmh_ops is None
        # The cached accessor materializes once and yields the same stream.
        assert program.mmh_ops == ops
        assert program._mmh_ops is not None

    def test_pickle_roundtrip_drops_caches_and_shrinks(self):
        a = random_csr(200, 200, 0.05, seed=11)
        a_csc = csr_to_csc(a)
        columnar = compile_spgemm(a_csc, a)
        loop = compile_spgemm_loop(a_csc, a)
        _ = columnar.mmh_ops  # populate caches; pickling must drop them
        _ = columnar.counters
        payload = pickle.dumps(columnar, protocol=pickle.HIGHEST_PROTOCOL)
        legacy_payload = pickle.dumps(loop, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(payload) < len(legacy_payload) / 2, \
            "columnar pickle should be several times smaller than macro-ops"
        restored = pickle.loads(payload)
        assert restored._mmh_ops is None
        assert restored.n_instructions == columnar.n_instructions
        assert restored.encode_binary() == loop.encode_binary()
        np.testing.assert_array_equal(restored.reference_result(),
                                      loop.reference_result())


class TestOffsetOverflow:
    def test_require_offset_accepts_the_limit(self):
        assert _require_offset(_OFFSET_LIMIT) == _OFFSET_LIMIT
        assert _require_offset(0) == 0

    def test_require_offset_rejects_overflow(self):
        with pytest.raises(ValueError, match="22-bit"):
            _require_offset(_OFFSET_LIMIT + 1, "b_data")

    def test_compile_raises_instead_of_aliasing_on_huge_operands(self):
        # A diagonal operand big enough that the B data region starts past
        # the 22-bit offset field: the old compiler silently masked these
        # addresses (aliasing fetches); now it is a compile error.
        n = 360_000
        eye = CSRMatrix(np.arange(n + 1, dtype=np.int64),
                        np.arange(n, dtype=np.int64),
                        np.ones(n), (n, n))
        with pytest.raises(ValueError, match="22-bit"):
            compile_spgemm(csr_to_csc(eye), eye, tile_size=4)
