"""Fault-injection tests for the static IR verifier (pass 1).

Each test mutates one :class:`ProgramArrays` field class — operand
offsets, ordering keys, rolling counters, slot/counter addresses — and
asserts the verifier reports the *precise* invariant that broke, not
just "something is wrong".
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.findings import VerificationError
from repro.analysis.verifier import (
    OFFSET_LIMIT,
    assert_program_valid,
    require_offset,
    verify_program,
)
from repro.compiler.lowering import compile_spgemm, compile_spgemm_loop
from repro.compiler.program import Program
from repro.datasets.suite import load_dataset


@pytest.fixture(scope="module")
def program():
    dataset = load_dataset("wiki-Vote", max_nodes=96, seed=0)
    return compile_spgemm(dataset.adjacency_csc(),
                          dataset.features(seed=7),
                          tile_size=4, source="verifier-test")


def mutate(program, **overrides):
    arrays = dataclasses.replace(program.arrays, **overrides)
    return Program(arrays=arrays, address_map=program.address_map,
                   shape=program.shape, tile_size=program.tile_size,
                   a_nnz=program.a_nnz, b_nnz=program.b_nnz,
                   total_partial_products=program.total_partial_products,
                   source=program.source)


def fired(program, level="full"):
    return {finding.check for finding in verify_program(program, level=level)}


class TestCleanPrograms:
    def test_compiled_program_verifies_clean(self, program):
        assert verify_program(program, level="full") == []
        assert verify_program(program, level="quick") == []

    def test_assert_program_valid_returns_program(self, program):
        assert assert_program_valid(program) is program

    def test_legacy_loop_program_verifies_clean(self):
        dataset = load_dataset("facebook", max_nodes=64, seed=1)
        legacy = compile_spgemm_loop(dataset.adjacency_csc(),
                                     dataset.features(seed=3), tile_size=2)
        assert verify_program(legacy) == []

    def test_unknown_level_rejected(self, program):
        with pytest.raises(ValueError, match="verify level"):
            verify_program(program, level="paranoid")


class TestOffsetFaults:
    def test_shifted_operand_address(self, program):
        bad = program.arrays.op_a_addr.copy()
        bad[3] += 4
        assert fired(mutate(program, op_a_addr=bad)) == {"operand-offsets"}

    def test_22bit_overflow(self, program):
        bad = program.arrays.op_b_data_addr.copy()
        bad[0] = OFFSET_LIMIT + 1
        assert fired(mutate(program, op_b_data_addr=bad)) \
            == {"offset-field-width"}

    def test_require_offset_limits(self):
        assert require_offset(OFFSET_LIMIT) == OFFSET_LIMIT
        with pytest.raises(ValueError, match="22-bit"):
            require_offset(OFFSET_LIMIT + 1, "a_data")


class TestOrderingFaults:
    def test_row_group_order_violation(self, program):
        groups = program.arrays.op_group.copy()
        groups[0], groups[-1] = groups[-1], groups[0]
        assert "row-group-order" in fired(mutate(program, op_group=groups))

    def test_reseed_flag_off_boundary(self, program):
        reseed = program.arrays.op_reseed.copy()
        reseed[0] = not reseed[0]
        assert fired(mutate(program, op_reseed=reseed)) \
            == {"reseed-boundaries"}


class TestCounterFaults:
    def test_tampered_rolling_counter_quick(self, program):
        counts = program.arrays.out_counts.copy()
        counts[0] += 1
        assert fired(mutate(program, out_counts=counts), level="quick") \
            == {"counter-histogram"}

    def test_swapped_counters_need_full_level(self, program):
        # Moving a contribution between slots keeps the total invariant;
        # only the full partial-product scatter catches it.
        counts = program.arrays.out_counts.copy()
        assert counts.size >= 2
        counts[0] += 1
        counts[1] -= 1
        if counts[1] < 1:
            pytest.skip("needs a slot with >= 2 contributions")
        bad = mutate(program, out_counts=counts)
        assert fired(bad, level="quick") == set()
        assert fired(bad, level="full") == {"counter-histogram"}


class TestAddressExclusivityFaults:
    def test_rotated_slot(self, program):
        slots = program.arrays.op_slot.copy()
        slots[0] = (slots[0] + 1) % program.arrays.output_nnz
        assert fired(mutate(program, op_slot=slots)) \
            == {"address-exclusivity"}

    def test_shifted_counter_address(self, program):
        addrs = program.arrays.op_counter_addr.copy()
        addrs[0] += 4
        assert fired(mutate(program, op_counter_addr=addrs)) \
            == {"address-exclusivity"}


class TestStructuralFaults:
    def test_truncated_column(self, program):
        assert fired(mutate(program, op_k=program.arrays.op_k[:-1])) \
            == {"column-alignment"}

    def test_wrong_dtype_column(self, program):
        wide = program.arrays.op_slot.astype(np.int64)
        assert fired(mutate(program, op_slot=wide)) == {"column-dtype"}

    def test_empty_slice(self, program):
        his = program.arrays.op_a_hi.copy()
        his[0] = program.arrays.op_a_lo[0]
        assert fired(mutate(program, op_a_hi=his)) == {"operand-slices"}

    def test_unsorted_output_keys(self, program):
        indices = program.arrays.out_indices.copy()
        indices[0], indices[1] = indices[1], indices[0]
        assert fired(mutate(program, out_indices=indices)) \
            == {"output-structure"}


class TestErrorSurface:
    def test_assert_program_valid_raises_with_findings(self, program):
        counts = program.arrays.out_counts.copy()
        counts[0] += 1
        with pytest.raises(VerificationError) as excinfo:
            assert_program_valid(mutate(program, out_counts=counts))
        assert excinfo.value.findings
        assert excinfo.value.findings[0].pass_name == "ir"
        assert excinfo.value.findings[0].check == "counter-histogram"
