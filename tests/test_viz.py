"""Unit tests for the NeuraViz-style exporters."""

import json

import numpy as np
import pytest

from repro.sim.stats import Histogram
from repro.viz.export import (
    format_table,
    heatmap_to_text,
    histogram_to_rows,
    save_csv,
    save_json,
    speedup_table_to_rows,
)


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bbbb", "value": 20.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text and "20.000" in text
        assert len(lines) == 4  # header + separator + 2 rows

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestHistogramRows:
    def test_rows_cover_all_bins(self):
        hist = Histogram(bin_width=25, n_bins=4)
        hist.add(10)
        hist.add(60)
        rows = histogram_to_rows(hist, label="mmh")
        assert len(rows) == 4
        assert rows[0]["mmh_percent"] == pytest.approx(50.0)
        assert rows[-1]["bin"].endswith("+")


class TestHeatmap:
    def test_text_shading_dimensions(self):
        heatmap = np.arange(12).reshape(3, 4)
        text = heatmap_to_text(heatmap)
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)

    def test_empty_heatmap(self):
        assert heatmap_to_text(np.zeros((0, 0))) == "(empty heatmap)"

    def test_hot_cells_use_denser_glyphs(self):
        heatmap = np.array([[0, 100]])
        text = heatmap_to_text(heatmap)
        assert text[0] == " " and text[-1] == "@"


class TestSpeedupRows:
    def test_flattening(self):
        table = {"MKL": {"facebook": 20.0, "gmean": 22.0}}
        rows = speedup_table_to_rows(table)
        assert {"platform", "dataset", "speedup"} == set(rows[0])
        assert len(rows) == 2


class TestPersistence:
    def test_save_csv_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = save_csv(rows, tmp_path / "out" / "table.csv")
        content = path.read_text().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_save_csv_empty(self, tmp_path):
        path = save_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_save_json_handles_numpy_types(self, tmp_path):
        payload = {"value": np.float64(1.5), "count": np.int64(3),
                   "series": np.arange(3)}
        path = save_json(payload, tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded == {"value": 1.5, "count": 3, "series": [0, 1, 2]}
