"""Unit tests for the four SpGEMM dataflows (Figure 2)."""

import numpy as np
import pytest

from repro.sparse.convert import csr_to_csc
from repro.sparse.csr import CSRMatrix
from repro.sparse.spgemm import (
    run_all_dataflows,
    spgemm_dense_reference,
    spgemm_inner_product,
    spgemm_outer_product,
    spgemm_row_wise,
    spgemm_tiled_gustavson,
)


class TestCorrectness:
    def test_all_dataflows_match_dense_reference(self, random_pair):
        a, b = random_pair
        reference = spgemm_dense_reference(a, b)
        results = run_all_dataflows(a, b)
        assert set(results) == {"inner", "outer", "row_wise", "tiled_gustavson"}
        for name, result in results.items():
            assert np.allclose(result.matrix.to_dense(), reference), name

    def test_identity_product(self):
        eye = CSRMatrix.from_dense(np.eye(6))
        result = spgemm_row_wise(eye, eye)
        assert np.allclose(result.matrix.to_dense(), np.eye(6))

    def test_zero_matrix_product(self):
        zero = CSRMatrix.empty((4, 4))
        result = spgemm_row_wise(zero, zero)
        assert result.output_nnz == 0
        assert result.partial_products == 0

    def test_rectangular_product(self):
        rng = np.random.default_rng(7)
        a_dense = (rng.random((6, 9)) < 0.4) * rng.random((6, 9))
        b_dense = (rng.random((9, 5)) < 0.4) * rng.random((9, 5))
        a = CSRMatrix.from_dense(a_dense)
        b = CSRMatrix.from_dense(b_dense)
        for name, result in run_all_dataflows(a, b).items():
            assert np.allclose(result.matrix.to_dense(), a_dense @ b_dense), name

    def test_dimension_mismatch_raises(self):
        a = CSRMatrix.from_dense(np.ones((3, 4)))
        b = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(ValueError):
            spgemm_row_wise(a, b)
        with pytest.raises(ValueError):
            spgemm_inner_product(a, csr_to_csc(b))
        with pytest.raises(ValueError):
            spgemm_outer_product(csr_to_csc(a), b)
        with pytest.raises(ValueError):
            spgemm_tiled_gustavson(csr_to_csc(a), b)


class TestStatistics:
    def test_partial_product_counts_agree_across_dataflows(self, random_pair):
        a, b = random_pair
        results = run_all_dataflows(a, b)
        counts = {r.partial_products for r in results.values()}
        assert len(counts) == 1

    def test_bloat_is_consistent_with_equation_one(self, random_pair):
        a, b = random_pair
        result = spgemm_row_wise(a, b)
        expected = (result.partial_products - result.output_nnz) / result.output_nnz * 100
        assert result.bloat_percent == pytest.approx(expected)

    def test_flops_is_twice_partial_products(self, random_pair):
        a, b = random_pair
        result = spgemm_row_wise(a, b)
        assert result.flops == 2 * result.partial_products

    def test_outer_product_reports_batches(self, random_pair):
        a, b = random_pair
        result = spgemm_outer_product(csr_to_csc(a), b)
        assert 0 < result.intermediate_batches <= a.shape[1]

    def test_accumulations_equal_pp_minus_output(self, random_pair):
        a, b = random_pair
        for name, result in run_all_dataflows(a, b).items():
            assert result.accumulations == result.partial_products - result.output_nnz, name

    def test_zero_output_bloat_is_zero(self):
        zero = CSRMatrix.empty((3, 3))
        result = spgemm_row_wise(zero, zero)
        assert result.bloat_percent == 0.0


class TestTiledGustavson:
    @pytest.mark.parametrize("tile_rows", [1, 2, 3, 4, 8])
    def test_tile_sizes_all_correct(self, random_pair, tile_rows):
        a, b = random_pair
        reference = spgemm_dense_reference(a, b)
        result = spgemm_tiled_gustavson(csr_to_csc(a), b, tile_rows=tile_rows)
        assert np.allclose(result.matrix.to_dense(), reference)

    def test_invalid_tile_size(self, random_pair):
        a, b = random_pair
        with pytest.raises(ValueError):
            spgemm_tiled_gustavson(csr_to_csc(a), b, tile_rows=0)

    def test_larger_tiles_issue_fewer_instructions(self, random_pair):
        a, b = random_pair
        small = spgemm_tiled_gustavson(csr_to_csc(a), b, tile_rows=1)
        large = spgemm_tiled_gustavson(csr_to_csc(a), b, tile_rows=8)
        assert large.extra["mmh_instructions"] <= small.extra["mmh_instructions"]
