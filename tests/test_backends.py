"""Backend registry and execution backend tests."""

import numpy as np
import pytest

from repro.backends import (
    CALIBRATED_TOLERANCE,
    ExecutionBackend,
    ExecutionContext,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backends.registry import _BACKENDS
from repro.core.api import NeuraChip
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def chip():
    return NeuraChip("Tile-4")


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=96, seed=3)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"functional", "cycle", "analytic"} <= set(available_backends())

    def test_unknown_name_lists_registered_backends(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("quantum")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_get_backend_returns_fresh_instances(self):
        assert get_backend("cycle") is not get_backend("cycle")

    def test_custom_backend_registration(self):
        @register_backend("null-test")
        class NullBackend(ExecutionBackend):
            def execute(self, program, ctx, a_csc=None, b_csr=None,
                        verify=True):
                raise NotImplementedError

        try:
            assert isinstance(get_backend("null-test"), NullBackend)
            assert "null-test" in available_backends()
        finally:
            _BACKENDS.pop("null-test", None)


class TestBackendSelection:
    def test_run_spgemm_backend_param(self, chip, wiki):
        a = wiki.adjacency_csr()
        dense = a.to_dense() @ a.to_dense()
        for backend in ("functional", "cycle", "analytic"):
            result = chip.run_spgemm(a, backend=backend, verify=False)
            assert result.backend == backend
            assert np.allclose(result.output.to_dense(), dense)

    def test_legacy_mode_still_selects_backend(self, chip, wiki):
        result = chip.run_spgemm(wiki.adjacency_csr(), mode="functional")
        assert result.backend == "functional"
        assert result.report is None

    def test_backend_overrides_mode(self, chip, wiki):
        result = chip.run_spgemm(wiki.adjacency_csr(), mode="functional",
                                 backend="analytic")
        assert result.backend == "analytic"
        assert result.report is not None

    def test_unknown_backend_raises_before_compile(self, chip):
        with pytest.raises(ValueError, match="registered backends"):
            chip.run_spgemm("not even a matrix", backend="quantum")

    def test_gcn_layer_on_analytic_backend(self, chip, wiki):
        result = chip.run_gcn_layer(wiki, feature_dim=8, hidden_dim=4,
                                    backend="analytic")
        reference = result.workload.reference_output()
        assert np.allclose(result.output, reference)
        assert result.total_cycles > result.combination_cycles > 0


class TestAnalyticBackend:
    """Prediction accuracy against the cycle backend (calibration datasets)."""

    @pytest.mark.parametrize("name,nodes", [
        ("wiki-Vote", 96),
        ("facebook", 80),
    ])
    def test_within_documented_tolerance_of_cycle_backend(self, chip, name,
                                                          nodes):
        dataset = load_dataset(name, max_nodes=nodes, seed=3)
        adjacency = dataset.adjacency_csr()
        predicted = chip.run_spgemm(adjacency, backend="analytic")
        measured = chip.run_spgemm(adjacency, backend="cycle", verify=False)
        relative_error = abs(predicted.report.cycles
                             - measured.report.cycles) / measured.report.cycles
        assert relative_error <= CALIBRATED_TOLERANCE

    def test_exact_counts_and_kernel_output(self, chip, wiki):
        a = wiki.adjacency_csr()
        result = chip.run_spgemm(a, backend="analytic")
        program = result.program
        report = result.report
        # Instruction and op counts are exact, not estimated.
        assert report.mmh_instructions == program.n_instructions
        assert report.hacc_instructions == program.total_partial_products
        assert report.output_nnz == program.output_nnz
        assert report.correct is None
        assert result.functional is None
        assert np.allclose(result.output.to_dense(),
                           a.to_dense() @ a.to_dense())

    def test_python_impl_produces_same_output(self, chip, wiki):
        a = wiki.adjacency_csr()
        fast = chip.run_spgemm(a, backend="analytic", impl="numpy")
        slow = chip.run_spgemm(a, backend="analytic", impl="python")
        assert np.allclose(fast.output.to_dense(), slow.output.to_dense())
        assert fast.report.cycles == slow.report.cycles

    def test_power_model_consumes_analytic_report(self, chip, wiki):
        result = chip.run_spgemm(wiki.adjacency_csr(), backend="analytic")
        assert result.power_w > 0
        assert result.energy_j > 0

    def test_scales_with_workload_size(self, chip):
        small = load_dataset("wiki-Vote", max_nodes=64, seed=3)
        large = load_dataset("wiki-Vote", max_nodes=192, seed=3)
        cycles = [chip.run_spgemm(d.adjacency_csr(),
                                  backend="analytic").report.cycles
                  for d in (small, large)]
        assert cycles[1] > cycles[0]

    def test_context_defaults_recorded(self, chip, wiki):
        result = chip.run_spgemm(wiki.adjacency_csr(), backend="analytic")
        assert result.report.mapping_scheme == chip.mapping_scheme
        assert result.report.eviction_mode == chip.eviction_mode
        assert result.report.counters["analytic.binding_bound"] in (
            "issue", "multiply", "inject", "hash", "ingress", "request", "bus")


class TestExecutionContext:
    def test_frozen(self, chip):
        ctx = ExecutionContext(config=chip.config, params=chip.params,
                               mapping_scheme="drhm")
        with pytest.raises(AttributeError):
            ctx.kernel_impl = "python"
