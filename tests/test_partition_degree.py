"""Degree-aware shard planning: plan properties, byte-identity, monster rows.

The contract under test is the one the multi-chip backend relies on: a
:class:`~repro.sparse.partition.ShardPlan` must cover every row of A exactly
once (split rows exactly once *via their fragments*), fragments of a split
row must partition the output column space, and reducing the per-shard
products must reproduce the unsharded kernel output **byte for byte** — same
indptr, same indices, bitwise-equal float data — for any strategy, shard
count, and executor.
"""

import numpy as np
import pytest

from repro.core import Session, SpGEMMSpec
from repro.datasets import barabasi_albert_graph, kronecker_power_law_graph
from repro.sparse import coo_to_csr, spgemm_kernel
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import (
    DEGREE_AUTO_SKEW_THRESHOLD,
    UNIT_OVERHEAD_PP,
    build_shard_units,
    modeled_makespan,
    plan_shards,
    resolve_shard_weights,
    shard_partial_products,
    stitch_shard_outputs,
)


def _with_random_data(csr: CSRMatrix, seed: int) -> CSRMatrix:
    """Replace the unit weights of a generated graph with Gaussian floats so
    byte-identity actually exercises float summation order."""
    rng = np.random.default_rng(seed)
    return CSRMatrix(csr.indptr.copy(), csr.indices.copy(),
                     rng.standard_normal(csr.nnz), csr.shape)


def _ba(n: int = 256, attach: int = 6, seed: int = 0) -> CSRMatrix:
    return _with_random_data(
        coo_to_csr(barabasi_albert_graph(n, attach, seed=seed)), seed + 1)


def _kron(n: int = 256, seed: int = 0) -> CSRMatrix:
    m = 8 * n
    return _with_random_data(
        coo_to_csr(kronecker_power_law_graph(n, m, seed=seed)), seed + 1)


def _monster(n: int = 96, seed: int = 3) -> CSRMatrix:
    """One dense hub row plus a sparse tail: the hub's partial-product
    weight exceeds any fair per-shard budget, so the degree planner *must*
    split it into column-range fragments."""
    rng = np.random.default_rng(seed)
    rows = [np.zeros(n, dtype=np.int64)]
    cols = [np.arange(n, dtype=np.int64)]
    for r in range(1, n):
        deg = int(rng.integers(1, 4))
        rows.append(np.full(deg, r, dtype=np.int64))
        cols.append(rng.choice(n, size=deg, replace=False).astype(np.int64))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, r + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(indptr, c, rng.standard_normal(c.size), (n, n))


def _assert_same_csr(got: CSRMatrix, want: CSRMatrix) -> None:
    assert got.shape == want.shape
    np.testing.assert_array_equal(got.indptr, want.indptr)
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.data, want.data)  # bitwise, no tol


def _plan_row_cover(plan):
    """(rows covered by whole-row assignments, rows covered by fragments)."""
    whole = np.concatenate([s.rows for s in plan.shards]
                           + [np.empty(0, dtype=np.int64)])
    frag = np.array(sorted({f.row for s in plan.shards for f in s.fragments}),
                    dtype=np.int64)
    return whole, frag


class TestDegreePlanProperties:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_every_row_exactly_once(self, n_shards):
        a = _ba()
        plan = plan_shards(a, n_shards, a, strategy="degree")
        whole, frag = _plan_row_cover(plan)
        assert np.intersect1d(whole, frag).size == 0
        covered = np.sort(np.concatenate([whole, frag]))
        np.testing.assert_array_equal(covered, np.arange(a.shape[0]))
        assert tuple(sorted(plan.split_rows)) == tuple(frag.tolist())

    # at 2 shards the hub row fits under the per-shard budget; 4+ forces
    # fragment splitting
    @pytest.mark.parametrize("n_shards", [4, 8])
    def test_fragments_partition_columns(self, n_shards):
        a = _monster()
        plan = plan_shards(a, n_shards, a, strategy="degree")
        assert plan.split_rows, "monster row should force fragment splitting"
        n_cols = a.shape[1]
        for row in plan.split_rows:
            frags = sorted((f for s in plan.shards for f in s.fragments
                            if f.row == row), key=lambda f: f.col_lo)
            assert frags[0].col_lo == 0
            assert frags[-1].col_hi == n_cols
            for left, right in zip(frags, frags[1:]):
                assert left.col_hi == right.col_lo  # contiguous, no overlap

    @pytest.mark.parametrize("strategy", ["contiguous", "degree"])
    def test_loads_sum_to_total_weight(self, strategy):
        a = _kron()
        plan = plan_shards(a, 4, a, strategy=strategy)
        total = resolve_shard_weights(a, a).sum()
        assert plan.loads.sum() == pytest.approx(total)

    def test_degree_skew_never_worse_than_contiguous_on_power_law(self):
        a = _kron(seed=5)
        contiguous = plan_shards(a, 4, a, strategy="contiguous")
        degree = plan_shards(a, 4, a, strategy="degree")
        assert degree.skew <= contiguous.skew + 1e-9

    def test_auto_keeps_contiguous_when_balanced(self):
        a = _ba()  # BA with random attach order shards evenly by rows
        plan = plan_shards(a, 4, a, strategy="auto")
        if plan_shards(a, 4, a, strategy="contiguous").skew \
                <= DEGREE_AUTO_SKEW_THRESHOLD:
            assert plan.strategy == "contiguous"

    def test_auto_switches_to_degree_on_skew(self):
        a = _monster()
        contiguous = plan_shards(a, 4, a, strategy="contiguous")
        assert contiguous.skew > DEGREE_AUTO_SKEW_THRESHOLD
        plan = plan_shards(a, 4, a, strategy="auto")
        assert plan.strategy == "degree"
        assert plan.skew < contiguous.skew

    def test_unknown_strategy_rejected(self):
        a = _ba(32, 2)
        with pytest.raises(ValueError, match="strategy"):
            plan_shards(a, 2, a, strategy="round-robin")

    def test_bad_shard_count_rejected(self):
        a = _ba(32, 2)
        with pytest.raises(ValueError):
            plan_shards(a, 0, a)

    def test_shard_partial_products_accepts_plan_and_ranges(self):
        a = _ba()
        weights = resolve_shard_weights(a, a)
        plan = plan_shards(a, 4, a, strategy="contiguous")
        from_plan = shard_partial_products(a, plan, a)
        from_ranges = shard_partial_products(a, plan.ranges, a)
        np.testing.assert_allclose(from_plan, plan.loads)
        np.testing.assert_allclose(from_ranges, plan.loads)
        expected = [weights[lo:hi].sum() for lo, hi in plan.ranges]
        np.testing.assert_allclose(from_ranges, expected)

    def test_resolve_weights_falls_back_to_nnz(self):
        # A = I4, B structurally empty: every partial-product estimate is
        # zero, so the planner balances on A's nnz instead.
        a = CSRMatrix(np.arange(5, dtype=np.int64),
                      np.arange(4, dtype=np.int64),
                      np.ones(4), (4, 4))
        b = CSRMatrix(np.zeros(5, dtype=np.int64),
                      np.empty(0, dtype=np.int64), np.empty(0), (4, 3))
        weights = resolve_shard_weights(a, b)
        np.testing.assert_allclose(weights, [1.0, 1.0, 1.0, 1.0])

    def test_stitch_roundtrip_without_backend(self):
        a = _monster()
        b = _with_random_data(a, 11)
        want = spgemm_kernel(a, b).matrix
        plan = plan_shards(a, 4, b, strategy="degree")
        outputs = []
        for units in build_shard_units(a, b, plan):
            rows_out, frag_outs = None, []
            for unit in units:
                product = spgemm_kernel(unit.a, unit.b).matrix
                if unit.fragment is None:
                    rows_out = product
                else:
                    frag_outs.append(product)
            outputs.append((rows_out, frag_outs))
        _assert_same_csr(stitch_shard_outputs(plan, outputs, b.shape[1]),
                         want)


class TestByteIdentity:
    @pytest.mark.parametrize("chips", [1, 2, 4, 8])
    @pytest.mark.parametrize("partition", ["contiguous", "degree"])
    def test_multichip_matches_unsharded(self, chips, partition):
        a = _kron(seed=7)
        want = spgemm_kernel(a, a).matrix
        with Session("Tile-16", backend="multichip", chips=chips,
                     partition=partition) as session:
            result = session.run(SpGEMMSpec(a=a, verify=False))
        _assert_same_csr(result.output, want)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_multichip_pooled_executors(self, executor):
        a = _ba(160, 5, seed=2)
        want = spgemm_kernel(a, a).matrix
        with Session("Tile-16", backend="multichip", chips=4,
                     partition="degree", executor=executor,
                     workers=2) as session:
            result = session.run(SpGEMMSpec(a=a, verify=False))
        _assert_same_csr(result.output, want)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_session_sharded_host_path(self, executor):
        a = _monster(seed=9)
        want = spgemm_kernel(a, a).matrix
        with Session("Tile-16", backend="analytic", partition="degree",
                     executor=executor, workers=2) as session:
            result = session.run(SpGEMMSpec(a=a, shards=4, verify=False))
        _assert_same_csr(result.output, want)

    def test_empty_product_all_strategies(self):
        a = CSRMatrix(np.arange(5, dtype=np.int64),
                      np.arange(4, dtype=np.int64), np.ones(4), (4, 4))
        b = CSRMatrix(np.zeros(5, dtype=np.int64),
                      np.empty(0, dtype=np.int64), np.empty(0), (4, 3))
        want = spgemm_kernel(a, b).matrix
        for partition in ("auto", "contiguous", "degree"):
            with Session("Tile-16", backend="multichip", chips=2,
                         partition=partition) as session:
                result = session.run(SpGEMMSpec(a=a, b=b, verify=False))
            _assert_same_csr(result.output, want)

    def test_all_zero_matrix(self):
        a = CSRMatrix(np.zeros(7, dtype=np.int64),
                      np.empty(0, dtype=np.int64), np.empty(0), (6, 6))
        want = spgemm_kernel(a, a).matrix
        with Session("Tile-16", backend="multichip", chips=3,
                     partition="degree") as session:
            result = session.run(SpGEMMSpec(a=a, verify=False))
        _assert_same_csr(result.output, want)


class TestMonsterRow:
    def test_split_is_required_and_exact(self):
        a = _monster()
        b = _with_random_data(a, 21)
        plan = plan_shards(a, 4, b, strategy="degree")
        assert 0 in plan.split_rows
        n_frags = sum(1 for s in plan.shards for f in s.fragments
                      if f.row == 0)
        assert n_frags >= 2
        want = spgemm_kernel(a, b).matrix
        with Session("Tile-16", backend="multichip", chips=4,
                     partition="degree") as session:
            result = session.run(SpGEMMSpec(a=a, b=b, verify=False))
        _assert_same_csr(result.output, want)
        assert result.metrics["partition"] == "degree"
        assert result.metrics["split_rows"] >= 1

    def test_degree_beats_contiguous_skew_on_monster(self):
        a = _monster(seed=17)
        contiguous = plan_shards(a, 4, a, strategy="contiguous")
        degree = plan_shards(a, 4, a, strategy="degree")
        assert degree.skew < contiguous.skew
        assert degree.efficiency > contiguous.efficiency


class TestUnitOverheadProbe:
    """The auto probe compares modeled makespans — max shard load plus a
    per-compiled-unit charge — so fragment-heavy degree plans only win
    when their balance gain actually survives the extra compiles."""

    def test_modeled_makespan_reduces_to_max_load_at_zero_overhead(self):
        a = _monster()
        plan = plan_shards(a, 4, a, strategy="contiguous")
        assert modeled_makespan(plan, 0.0) == float(plan.loads.max())

    def test_makespan_charges_fragments(self):
        a = _monster()
        degree = plan_shards(a, 4, a, strategy="degree")
        n_units = sum(shard.n_units for shard in degree.shards)
        assert n_units > degree.n_shards  # monster row split into fragments
        base = modeled_makespan(degree, 0.0)
        charged = modeled_makespan(degree, UNIT_OVERHEAD_PP)
        # At least one overhead charge lands on the slowest shard.
        assert charged >= base + UNIT_OVERHEAD_PP

    def test_large_overhead_flips_auto_back_to_contiguous(self):
        a = _monster()
        assert plan_shards(a, 4, a, strategy="auto").strategy == "degree"
        total = int(resolve_shard_weights(a, a, None).sum())
        # With a per-unit charge dwarfing the whole workload, no amount of
        # balance is worth a single extra compile.
        flipped = plan_shards(a, 4, a, strategy="auto",
                              unit_overhead_pp=float(total))
        assert flipped.strategy == "contiguous"

    def test_explicit_degree_ignores_overhead(self):
        a = _monster()
        total = int(resolve_shard_weights(a, a, None).sum())
        plan = plan_shards(a, 4, a, strategy="degree",
                           unit_overhead_pp=float(total))
        assert plan.strategy == "degree"

    def test_negative_overhead_rejected(self):
        a = _monster()
        with pytest.raises(ValueError, match="unit_overhead_pp"):
            plan_shards(a, 4, a, unit_overhead_pp=-1.0)


class TestAcceptance:
    """ISSUE acceptance: 2k-node BA graph (attach=8), 4 chips — the
    degree plan must reach shard_skew <= 1.1 and the stitched multi-chip
    output must be byte-identical to the single-chip product."""

    def test_ba_2k_attach8_four_chips(self):
        a = coo_to_csr(barabasi_albert_graph(2000, 8, seed=0))
        contiguous = plan_shards(a, 4, a, strategy="contiguous")
        degree = plan_shards(a, 4, a, strategy="degree")
        assert np.isfinite(contiguous.skew)  # baseline recorded alongside
        assert degree.skew <= 1.1
        want = spgemm_kernel(a, a).matrix
        with Session("Tile-16", backend="multichip", chips=4,
                     partition="degree") as session:
            result = session.run(SpGEMMSpec(a=a, verify=False))
        _assert_same_csr(result.output, want)
        assert result.metrics["shard_skew"] <= 1.1


class TestServingSurface:
    def test_stats_snapshot_reports_multichip_partition(self):
        from repro.serve.batcher import ServingStats
        stats = ServingStats()
        snap = stats.snapshot()
        assert snap["degree_partition_runs"] == 0
        assert snap["multichip_partition"] is None
        stats.record_multichip(1.07, 0.93, "degree")
        snap = stats.snapshot()
        assert snap["multichip_shard_skew"] == pytest.approx(1.07)
        assert snap["multichip_efficiency"] == pytest.approx(0.93)
        assert snap["multichip_partition"] == "degree"
        assert snap["degree_partition_runs"] == 1
        stats.record_multichip(None, None, None)  # None-safe, no overwrite
        assert stats.snapshot()["multichip_shard_skew"] \
            == pytest.approx(1.07)

    def test_schedule_decision_carries_partition(self):
        from repro.backends.multichip import ChipTopology
        from repro.serve.policy import choose_schedule
        a = _monster()
        specs = [SpGEMMSpec(a=a, verify=False)] * 2
        decision = choose_schedule(
            specs, ChipTopology(n_chips=4, partition="degree"))
        assert decision.partition == "degree"
        single = choose_schedule(specs, None)
        assert single.partition == "contiguous"
