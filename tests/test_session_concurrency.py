"""Concurrent Session.submit / Session.map semantics the server relies on:
result ordering, exception propagation through futures, cancellation, and
close() behaviour with requests in flight."""

import time

import pytest

from repro.core import Session, SpGEMMSpec, WorkloadSpec
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=96, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def facebook():
    return load_dataset("facebook", max_nodes=96, seed=5).adjacency_csr()


class TestOrdering:
    def test_map_order_is_submission_order_despite_uneven_work(self, wiki,
                                                               facebook):
        # Interleave large and small jobs so completion order differs from
        # submission order; map must still return submission order.
        small = load_dataset("wiki-Vote", max_nodes=24,
                             seed=1).adjacency_csr()
        specs = []
        for index in range(4):
            specs.append(SpGEMMSpec(a=wiki, b=facebook, verify=False,
                                    label=f"big-{index}"))
            specs.append(SpGEMMSpec(a=small, verify=False,
                                    label=f"small-{index}"))
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=4) as session:
            results = session.map(specs)
        assert [r.label for r in results] == [s.label for s in specs]

    def test_interleaved_submits_resolve_independently(self, wiki, facebook):
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=2) as session:
            futures = [session.submit(SpGEMMSpec(a=matrix, verify=False,
                                                 label=str(index)))
                       for index, matrix in enumerate([wiki, facebook] * 3)]
            results = [future.result(timeout=60) for future in futures]
        assert [r.label for r in results] == [str(i) for i in range(6)]


class TestExceptionPropagation:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_submit_routes_exception_into_future(self, executor):
        with Session("Tile-4", backend="analytic",
                     executor=executor) as session:
            future = session.submit(WorkloadSpec(label="bogus"))
            with pytest.raises(TypeError, match="unsupported spec"):
                future.result(timeout=60)

    def test_map_propagates_first_failure(self, wiki):
        specs = [SpGEMMSpec(a=wiki, verify=False),
                 WorkloadSpec(label="bogus"),
                 SpGEMMSpec(a=wiki, verify=False)]
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=2) as session:
            with pytest.raises(TypeError, match="unsupported spec"):
                session.map(specs)
            # The pool survives a poisoned batch and stays usable.
            results = session.map([SpGEMMSpec(a=wiki, verify=False)])
            assert results[0].metrics["cycles"] > 0


class TestCancellation:
    def test_queued_future_is_cancellable(self, wiki):
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=1) as session:
            # Occupy the single worker so the next submit stays queued.
            blocker = session.executor.submit(time.sleep, 0.4)
            queued = session.submit(SpGEMMSpec(a=wiki, verify=False))
            assert queued.cancel() is True
            assert queued.cancelled()
            blocker.result(timeout=60)

    def test_running_future_is_not_cancellable(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            # The serial executor resolves inline: by the time submit
            # returns, the work already ran and cancel must fail.
            future = session.submit(SpGEMMSpec(a=wiki, verify=False))
            assert future.cancel() is False
            assert future.result(timeout=60).metrics["cycles"] > 0


class TestCloseWithInFlight:
    def test_close_waits_for_in_flight_futures(self, wiki, facebook):
        session = Session("Tile-4", backend="analytic", executor="thread",
                          workers=2)
        futures = [session.submit(SpGEMMSpec(a=matrix, verify=False,
                                             label=str(index)))
                   for index, matrix in enumerate([wiki, facebook, wiki])]
        session.close()  # shutdown(wait=True): must not drop queued work
        assert all(future.done() for future in futures)
        for index, future in enumerate(futures):
            assert future.result().label == str(index)

    def test_submit_after_close_raises_even_with_results_pending(self, wiki):
        session = Session("Tile-4", backend="analytic", executor="thread",
                          workers=1)
        future = session.submit(SpGEMMSpec(a=wiki, verify=False))
        session.close()
        with pytest.raises(RuntimeError, match="session is closed"):
            session.submit(SpGEMMSpec(a=wiki))
        # The pre-close future still resolved normally.
        assert future.result(timeout=60).metrics["cycles"] > 0
