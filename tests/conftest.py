"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import TILE4, TILE16
from repro.compiler import compile_spgemm
from repro.datasets import load_dataset
from repro.sparse.convert import coo_to_csc, coo_to_csr
from repro.sparse.coo import COOMatrix


def random_sparse_coo(n_rows: int, n_cols: int, density: float,
                      seed: int = 0) -> COOMatrix:
    """Random sparse matrix with approximately the requested density."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(n_rows * n_cols * density))
    rows = rng.integers(0, n_rows, size=nnz)
    cols = rng.integers(0, n_cols, size=nnz)
    data = rng.random(nnz) + 0.1
    return COOMatrix(rows, cols, data, (n_rows, n_cols)).sum_duplicates()


@pytest.fixture
def small_coo() -> COOMatrix:
    """A fixed small sparse matrix used across format tests."""
    dense = np.array([
        [1.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [3.0, 4.0, 0.0, 5.0],
        [0.0, 6.0, 0.0, 7.0],
    ])
    return COOMatrix.from_dense(dense)


@pytest.fixture
def small_dense(small_coo) -> np.ndarray:
    return small_coo.to_dense()


@pytest.fixture
def random_coo() -> COOMatrix:
    return random_sparse_coo(24, 24, density=0.12, seed=3)


@pytest.fixture
def random_pair():
    """A compatible random (A, B) pair in CSR for SpGEMM tests."""
    a = coo_to_csr(random_sparse_coo(20, 16, 0.15, seed=1))
    b = coo_to_csr(random_sparse_coo(16, 12, 0.2, seed=2))
    return a, b


@pytest.fixture
def tiny_dataset():
    """A small synthetic power-law dataset for simulator tests."""
    return load_dataset("facebook", max_nodes=96, seed=5)


@pytest.fixture
def tiny_program(tiny_dataset):
    """A compiled SpGEMM (A @ A) program for the tiny dataset."""
    a_csr = tiny_dataset.adjacency_csr()
    a_csc = coo_to_csc(tiny_dataset.adjacency)
    return compile_spgemm(a_csc, a_csr, tile_size=4, source="test")


@pytest.fixture
def tile4():
    return TILE4


@pytest.fixture
def tile16():
    return TILE16
