"""Unit tests for the CSR and CSC compressed formats."""

import numpy as np
import pytest

from repro.sparse.convert import coo_to_csc, coo_to_csr
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


class TestCSRConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(csr.to_dense(), small_dense)

    def test_from_coo(self, small_coo, small_dense):
        csr = CSRMatrix.from_coo(small_coo)
        assert np.array_equal(csr.to_dense(), small_dense)

    def test_empty(self):
        csr = CSRMatrix.empty((4, 3))
        assert csr.nnz == 0
        assert csr.row_nnz(2) == 0

    def test_invalid_indptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (3, 3))

    def test_invalid_indptr_monotonicity(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2, 1, 2]), np.array([0, 1]),
                      np.array([1.0, 2.0]), (3, 3))

    def test_invalid_column_index(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([9]), np.array([1.0]), (1, 3))


class TestCSRAccess:
    def test_row_returns_columns_and_values(self, small_coo):
        csr = coo_to_csr(small_coo)
        cols, vals = csr.row(2)
        assert cols.tolist() == [0, 1, 3]
        assert vals.tolist() == [3.0, 4.0, 5.0]

    def test_row_out_of_range(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(IndexError):
            csr.row(10)

    def test_row_nnz_counts(self, small_coo):
        csr = coo_to_csr(small_coo)
        assert csr.row_nnz_counts().tolist() == [2, 0, 3, 2]

    def test_get_present_and_absent(self, small_coo):
        csr = coo_to_csr(small_coo)
        assert csr.get(2, 1) == pytest.approx(4.0)
        assert csr.get(1, 1) == 0.0

    def test_matvec_matches_dense(self, small_coo, small_dense):
        csr = coo_to_csr(small_coo)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(csr.matvec(x), small_dense @ x)

    def test_matvec_dimension_mismatch(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(ValueError):
            csr.matvec(np.ones(7))

    def test_scale_rows(self, small_coo, small_dense):
        csr = coo_to_csr(small_coo)
        factors = np.array([1.0, 2.0, 0.5, 3.0])
        scaled = csr.scale_rows(factors)
        assert np.allclose(scaled.to_dense(), small_dense * factors[:, None])

    def test_scale_rows_bad_length(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(ValueError):
            csr.scale_rows(np.ones(2))

    def test_transpose_is_csc_of_transpose(self, small_coo, small_dense):
        csr = coo_to_csr(small_coo)
        csc = csr.transpose()
        assert isinstance(csc, CSCMatrix)
        assert np.array_equal(csc.to_dense(), small_dense.T)


class TestCSCConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        assert np.array_equal(csc.to_dense(), small_dense)

    def test_empty(self):
        csc = CSCMatrix.empty((4, 3))
        assert csc.nnz == 0
        assert csc.col_nnz(1) == 0

    def test_invalid_row_index(self):
        with pytest.raises(ValueError):
            CSCMatrix(np.array([0, 1]), np.array([9]), np.array([1.0]), (3, 1))


class TestCSCAccess:
    def test_col_returns_rows_and_values(self, small_coo):
        csc = coo_to_csc(small_coo)
        rows, vals = csc.col(1)
        assert rows.tolist() == [2, 3]
        assert vals.tolist() == [4.0, 6.0]

    def test_col_out_of_range(self, small_coo):
        csc = coo_to_csc(small_coo)
        with pytest.raises(IndexError):
            csc.col(99)

    def test_col_nnz_counts(self, small_coo):
        csc = coo_to_csc(small_coo)
        assert csc.col_nnz_counts().tolist() == [2, 2, 1, 2]

    def test_get_present_and_absent(self, small_coo):
        csc = coo_to_csc(small_coo)
        assert csc.get(0, 2) == pytest.approx(2.0)
        assert csc.get(0, 1) == 0.0

    def test_transpose_is_csr_of_transpose(self, small_coo, small_dense):
        csc = coo_to_csc(small_coo)
        csr = csc.transpose()
        assert isinstance(csr, CSRMatrix)
        assert np.array_equal(csr.to_dense(), small_dense.T)

    def test_copy_is_independent(self, small_coo):
        csc = coo_to_csc(small_coo)
        copy = csc.copy()
        copy.data[0] = -1.0
        assert csc.data[0] != -1.0


class TestEquality:
    def test_csr_equality(self, small_coo):
        a = coo_to_csr(small_coo)
        b = coo_to_csr(small_coo)
        assert a == b

    def test_csr_inequality_on_values(self, small_coo):
        a = coo_to_csr(small_coo)
        b = a.copy()
        b.data[0] += 1.0
        assert a != b

    def test_csc_equality(self, small_coo):
        assert coo_to_csc(small_coo) == coo_to_csc(small_coo)
