"""Tests for the concurrency lint (pass 3): annotation-driven guard
checking over the known-good / known-bad fixture files, plus the
repository-wide clean baseline."""

from pathlib import Path

import pytest

import repro
from repro.analysis.lockcheck import lint_file, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def checks_by_line(findings):
    return {(finding.check, int(finding.location.rsplit(":", 1)[1]))
            for finding in findings}


class TestGoodFixture:
    def test_clean(self):
        assert lint_file(FIXTURES / "lockcheck_good.py") == []


class TestBadFixture:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_file(FIXTURES / "lockcheck_bad.py")

    def test_every_defect_class_fires(self, findings):
        assert {finding.check for finding in findings} == {
            "guard-violation", "bare-acquire", "unjoined-thread"}

    def test_unguarded_assignment_and_mutation(self, findings):
        guard_lines = {line for check, line in checks_by_line(findings)
                       if check == "guard-violation"}
        # record(): subscript write + augmented assign; sweep(): .clear()
        assert guard_lines == {18, 19, 22}

    def test_bare_acquire_location(self, findings):
        assert ("bare-acquire", 25) in checks_by_line(findings)

    def test_unjoined_thread(self, findings):
        assert any(finding.check == "unjoined-thread"
                   for finding in findings)

    def test_locations_name_the_file(self, findings):
        assert all("lockcheck_bad.py" in finding.location
                   for finding in findings)


class TestEscapeHatches:
    def test_ignore_comment_suppresses(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "    def f(self):\n"
            "        self.n += 1  # lockcheck: ignore\n")
        path = tmp_path / "ignored.py"
        path.write_text(source)
        assert lint_file(path) == []

    def test_holds_annotation_counts_as_held(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "    def f(self):  # lockcheck: holds _lock\n"
            "        self.n += 1\n")
        path = tmp_path / "holds.py"
        path.write_text(source)
        assert lint_file(path) == []

    def test_nested_function_does_not_inherit_with(self, tmp_path):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self.n += 1\n"
            "            return later\n")
        path = tmp_path / "nested.py"
        path.write_text(source)
        assert [finding.check for finding in lint_file(path)] \
            == ["guard-violation"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = lint_file(path)
        assert [finding.check for finding in findings] == ["unparseable"]


class TestRepositoryBaseline:
    def test_src_repro_is_clean(self):
        package_root = Path(repro.__file__).parent
        findings = lint_paths([package_root])
        assert findings == [], "\n".join(f.format() for f in findings)
