"""Calibration regression: `predict_scaleout` vs the measured scaling curve.

`benchmarks/bench_multichip.py` records the analytic fast path's predicted
speedup next to the measured cycle-model speedup in
`benchmarks/results/bench_multichip.json`.  These tests bound the gap —
the same contract as the analytic backend's ±25% CALIBRATED_TOLERANCE
band — so a model change that silently degrades the fast path's trust
region fails CI instead of shipping.
"""

import json
from pathlib import Path

import pytest

from repro.backends import SCALEOUT_CALIBRATION_BAND

RESULTS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / \
    "results" / "bench_multichip.json"

#: predict_scaleout is an upper bound; measured speedup may exceed it only
#: by rounding noise.
UPPER_BOUND_SLACK = 1.02


@pytest.fixture(scope="module")
def record():
    return json.loads(RESULTS_PATH.read_text())


def test_record_has_the_full_scaling_curve(record):
    chips = [point["chips"] for point in record["scaling"]]
    assert chips == sorted(chips)
    assert {1, 2, 4} <= set(chips)


def test_recorded_outputs_were_byte_identical(record):
    assert all(point["byte_identical"] for point in record["scaling"])


def test_predicted_speedup_is_an_upper_bound(record):
    for point in record["scaling"]:
        assert point["speedup"] <= \
            point["predicted_speedup"] * UPPER_BOUND_SLACK, \
            f"{point['chips']} chips: measured {point['speedup']} above " \
            f"prediction {point['predicted_speedup']}"


def test_prediction_gap_within_calibration_band(record):
    for point in record["scaling"]:
        assert point["speedup"] > 0
        gap = point["predicted_speedup"] / point["speedup"]
        assert gap <= SCALEOUT_CALIBRATION_BAND, \
            f"{point['chips']} chips: predicted/measured gap {gap:.3f} " \
            f"exceeds the {SCALEOUT_CALIBRATION_BAND} band"


def test_scaleout_acceptance_bar(record):
    # The documented bar: >= 1.5x cycle-model speedup at 4 chips on the
    # 2000-node graph (actual recorded value is ~3.8x).
    assert record["speedup_at_4_chips"] >= 1.5


def test_host_terms_are_recorded(record):
    for point in record["scaling"]:
        if point["chips"] == 1:
            assert point["reduce_cycles"] == 0.0
            assert point["broadcast_cycles"] == 0.0
        else:
            assert point["reduce_cycles"] > 0
            # Cold runs pay the one-time B broadcast.
            assert point["broadcast_cycles"] > 0
