"""Unit tests for the MMH / HACC instruction encodings (Figures 7 and 9)."""

import pytest

from repro.arch.isa import (
    HACCInstruction,
    INSTRUCTION_BITS,
    MMHInstruction,
    Opcode,
    decode_from_bytes,
    decode_hacc,
    decode_mmh,
    encode_hacc,
    encode_mmh,
    encode_to_bytes,
)


class TestOpcode:
    def test_mmh_for_tile_mapping(self):
        assert Opcode.mmh_for_tile(1) is Opcode.MMH1
        assert Opcode.mmh_for_tile(2) is Opcode.MMH2
        assert Opcode.mmh_for_tile(4) is Opcode.MMH4
        assert Opcode.mmh_for_tile(8) is Opcode.MMH8

    def test_mmh_for_tile_invalid(self):
        with pytest.raises(ValueError):
            Opcode.mmh_for_tile(3)

    def test_tile_size_roundtrip(self):
        for size in (1, 2, 4, 8):
            assert Opcode.mmh_for_tile(size).mmh_tile_size == size

    def test_tile_size_of_non_mmh_opcode(self):
        with pytest.raises(ValueError):
            _ = Opcode.HACC.mmh_tile_size


class TestMMHEncoding:
    def _instr(self, **overrides):
        fields = dict(opcode=Opcode.MMH4, base_addr=0x1000, a_data_addr=0x10,
                      b_col_ind_addr=0x20, b_data_addr=0x30, roll_counter_addr=0x40)
        fields.update(overrides)
        return MMHInstruction(**fields)

    def test_roundtrip(self):
        instr = self._instr()
        assert decode_mmh(encode_mmh(instr)) == instr

    def test_encoded_width_fits_128_bits(self):
        word = encode_mmh(self._instr(base_addr=(1 << 32) - 1,
                                      a_data_addr=(1 << 22) - 1,
                                      b_col_ind_addr=(1 << 22) - 1,
                                      b_data_addr=(1 << 22) - 1,
                                      roll_counter_addr=(1 << 22) - 1))
        assert word < (1 << INSTRUCTION_BITS)

    def test_base_addr_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_mmh(self._instr(base_addr=1 << 32))

    def test_offset_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_mmh(self._instr(a_data_addr=1 << 22))

    def test_decode_rejects_non_mmh_word(self):
        hacc_word = encode_hacc(HACCInstruction(tag=1, data=2.0,
                                                writeback_addr=3, counter=4))
        with pytest.raises(ValueError):
            decode_mmh(hacc_word)

    def test_max_haccs_matches_tile_square(self):
        assert self._instr(opcode=Opcode.MMH4).max_haccs == 16
        assert self._instr(opcode=Opcode.MMH2).max_haccs == 4

    def test_byte_serialisation_length(self):
        blob = encode_to_bytes(encode_mmh(self._instr()))
        assert len(blob) == 16
        assert decode_from_bytes(blob) == encode_mmh(self._instr())

    def test_decode_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            decode_from_bytes(b"\x00" * 5)


class TestHACCEncoding:
    def test_roundtrip(self):
        instr = HACCInstruction(tag=0xDEADBEEF, data=3.5, writeback_addr=0x123456,
                                counter=77)
        decoded = decode_hacc(encode_hacc(instr))
        assert decoded == instr

    def test_negative_data_survives(self):
        instr = HACCInstruction(tag=1, data=-2.25, writeback_addr=0, counter=1)
        assert decode_hacc(encode_hacc(instr)).data == pytest.approx(-2.25)

    def test_tag_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_hacc(HACCInstruction(tag=1 << 32, data=0.0, writeback_addr=0,
                                        counter=0))

    def test_counter_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_hacc(HACCInstruction(tag=0, data=0.0, writeback_addr=0,
                                        counter=1 << 16))

    def test_decode_rejects_non_hacc_word(self):
        mmh_word = encode_mmh(MMHInstruction(Opcode.MMH4, 0, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            decode_hacc(mmh_word)
