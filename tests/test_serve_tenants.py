"""Multi-tenant serving end-to-end: fairness, admission, accounting.

A latency tenant (tight deadlines, weight 4) and a bulk tenant (no
deadlines, weight 1) share one BackgroundServer; the tests pin the
contract: the latency tenant's requests jump the bulk backlog without
missing deadlines, the bulk tenant keeps the bulk of the throughput
(work conservation), admission rejections carry Retry-After, expired
deadlines return the structured 504 body, and coalesced cross-tenant
work is charged to exactly one tenant's WFQ deficit.
"""

import http.client
import json
import threading

import pytest

from repro.core import Session
from repro.serve import (
    BackgroundServer,
    MicroBatcher,
    ReproServer,
    RequestQueue,
    ServingStats,
    TenantConfig,
    TenantTable,
)


@pytest.fixture(scope="module")
def session():
    with Session("Tile-4", backend="analytic") as session:
        yield session


def make_table():
    return TenantTable([
        TenantConfig(name="latency", weight=4.0),
        TenantConfig(name="bulk", weight=1.0),
        TenantConfig(name="limited", weight=1.0, rate_rps=1.0, burst=1.0),
    ])


@pytest.fixture(scope="module")
def server(session):
    repro_server = ReproServer(session, port=0, max_batch=4,
                               max_delay_ms=2.0, queue_depth=128,
                               tenants=make_table())
    with BackgroundServer(repro_server) as background:
        yield background.server


def request(server, method, path, payload=None, tenant=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=60)
    headers = {} if tenant is None else {"X-Repro-Tenant": tenant}
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return (response.status, json.loads(response.read()),
                dict(response.getheaders()))
    finally:
        connection.close()


def spgemm_body(seed, **extra):
    return {"dataset": "wiki-Vote", "max_nodes": 96, "seed": seed, **extra}


class TestTenantIdentity:
    def test_default_tenant_when_header_absent(self, server):
        status, row, _ = request(server, "POST", "/v1/spgemm",
                                 spgemm_body(0))
        assert status == 200
        _, payload, _ = request(server, "GET", "/v1/tenants")
        assert payload["default_tenant"] == "default"
        assert payload["tenants"]["default"]["serving"]["admitted"] >= 1

    def test_tenant_header_routes_accounting(self, server):
        status, row, _ = request(server, "POST", "/v1/spgemm",
                                 spgemm_body(1), tenant="bulk")
        assert status == 200
        _, payload, _ = request(server, "GET", "/v1/tenants")
        bulk = payload["tenants"]["bulk"]
        assert bulk["serving"]["admitted"] >= 1
        assert bulk["serving"]["responses"] >= 1
        assert bulk["config"]["weight"] == 1.0
        assert bulk["scheduling"]["charged"] >= 1.0

    def test_invalid_tenant_header_400(self, server):
        status, payload, _ = request(server, "POST", "/v1/spgemm",
                                     spgemm_body(2), tenant="bad name!")
        assert status == 400
        assert "X-Repro-Tenant".lower() in payload["error"].lower()

    def test_stats_carries_tenant_rows(self, server):
        _, payload, _ = request(server, "GET", "/stats")
        assert "tenants" in payload
        assert "default" in payload["tenants"] or \
            "bulk" in payload["tenants"]


class TestAdmissionOverHTTP:
    def test_rate_limit_429_with_retry_after(self, server):
        first = request(server, "POST", "/v1/spgemm", spgemm_body(3),
                        tenant="limited")
        assert first[0] == 200
        status, payload, headers = request(server, "POST", "/v1/spgemm",
                                           spgemm_body(4),
                                           tenant="limited")
        assert status == 429
        assert payload["tenant"] == "limited"
        assert payload["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= 1
        _, tenants, _ = request(server, "GET", "/v1/tenants")
        serving = tenants["tenants"]["limited"]["serving"]
        assert serving["rejected_rate"] >= 1
        assert serving["rejected"] >= 1

    def test_deadline_expiry_is_structured_504(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/spgemm",
            spgemm_body(5, timeout_s=0.0), tenant="bulk")
        assert status == 504
        assert payload["error"] == "deadline"
        assert payload["tenant"] == "bulk"
        assert payload["queued_ms"] >= 0.0
        _, tenants, _ = request(server, "GET", "/v1/tenants")
        assert tenants["tenants"]["bulk"]["serving"]["deadline_misses"] >= 1


class TestMixedTenantFairness:
    def test_latency_tenant_meets_deadlines_bulk_keeps_share(self, server):
        """A saturating bulk tenant and a paced latency tenant: the
        latency tenant's tight deadlines all hold (EDF jumps the bulk
        backlog), while work conservation leaves the bulk tenant >= 70%
        of total completions."""
        n_bulk, n_latency = 48, 8
        errors = []

        def bulk_client(offset):
            for n in range(offset, n_bulk, 4):
                status, _, _ = request(server, "POST", "/v1/spgemm",
                                       spgemm_body(100 + n), tenant="bulk")
                if status != 200:
                    errors.append(("bulk", status))

        threads = [threading.Thread(target=bulk_client, args=(offset,))
                   for offset in range(4)]
        for thread in threads:
            thread.start()
        for n in range(n_latency):
            status, _, _ = request(server, "POST", "/v1/spgemm",
                                   spgemm_body(500 + n, timeout_s=10.0),
                                   tenant="latency")
            if status != 200:
                errors.append(("latency", status))
        for thread in threads:
            thread.join()
        assert not errors
        _, payload, _ = request(server, "GET", "/v1/tenants")
        latency = payload["tenants"]["latency"]["serving"]
        bulk = payload["tenants"]["bulk"]["serving"]
        assert latency["deadline_misses"] == 0
        assert latency["responses"] >= n_latency
        assert latency["latency_p95_ms"] < 5000.0
        total = latency["responses"] + bulk["responses"]
        assert bulk["responses"] / total >= 0.70


class TestCoalescedBilling:
    def test_cross_tenant_coalescing_charges_one_execution(self, session):
        """Three identical requests from two tenants coalesce into one
        execution; WFQ net charge across tenants is exactly one request,
        billed to the earliest-deadline owner, while every tenant still
        records its own latency sample."""
        table = TenantTable([TenantConfig(name="a", weight=1.0),
                             TenantConfig(name="b", weight=1.0)])
        queue = RequestQueue(max_depth=16, tenants=table)
        stats = ServingStats()
        batcher = MicroBatcher(session, queue, max_batch=8,
                               max_delay_ms=0.0, stats=stats)
        from repro.datasets import load_dataset
        from repro.core import SpGEMMSpec

        adjacency = load_dataset("wiki-Vote", max_nodes=96,
                                 seed=11).adjacency_csr()
        specs = [SpGEMMSpec(a=adjacency, label=f"r{n}") for n in range(3)]
        queue.put(specs[0], tenant="a")                    # no deadline
        owner = queue.put(specs[1], timeout_s=60.0, tenant="b")
        queue.put(specs[2], tenant="a")
        batch = queue.get_batch(8, 0.0)
        batcher._serve_batch(batch)

        accounts = queue.accounting()
        # One execution -> net one request across both tenants, charged
        # to tenant b (the only member holding a deadline).
        assert accounts["a"]["net"] == pytest.approx(0.0)
        assert accounts["b"]["net"] == pytest.approx(1.0)
        assert sum(row["charged"] - row["refunded"]
                   for row in accounts.values()) == pytest.approx(1.0)
        # Every request resolved with its own label and latency sample.
        assert owner.future.result(timeout=5).label == "r1"
        rows = stats.tenant_snapshot()
        assert rows["a"]["responses"] == 2
        assert rows["b"]["responses"] == 1
        assert stats.snapshot()["coalesced"] == 2
