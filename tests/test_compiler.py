"""Unit tests for the NeuraCompiler (program lowering)."""

import numpy as np
import pytest

from repro.arch.isa import Opcode, decode_mmh
from repro.compiler import compile_gcn_aggregation, compile_spgemm
from repro.compiler.program import AddressMap, ELEMENT_BYTES
from repro.datasets.features import feature_matrix
from repro.sparse.convert import coo_to_csc, coo_to_csr
from repro.sparse.csr import CSRMatrix


class TestAddressMap:
    def test_layout_regions_are_disjoint_and_ordered(self):
        layout = AddressMap.layout(a_nnz=10, b_nnz=20, output_nnz=30)
        assert layout.a_data_base == 0
        assert layout.a_indices_base == 10 * ELEMENT_BYTES
        assert layout.b_col_ind_base == 20 * ELEMENT_BYTES
        assert layout.b_data_base == 40 * ELEMENT_BYTES
        assert layout.roll_counter_base == 60 * ELEMENT_BYTES
        assert layout.output_base == 90 * ELEMENT_BYTES
        assert layout.total_bytes == 120 * ELEMENT_BYTES


class TestCompileSpGEMM:
    def test_program_counts_match_symbolic(self, tiny_dataset, tiny_program):
        a = tiny_dataset.adjacency_csr()
        from repro.sparse.symbolic import symbolic_spgemm

        symbolic = symbolic_spgemm(a, a)
        assert tiny_program.total_partial_products == symbolic.total_partial_products
        assert tiny_program.output_nnz == symbolic.nnz
        assert tiny_program.counters == symbolic.entries

    def test_program_validate_passes(self, tiny_program):
        tiny_program.validate()

    def test_reference_result_matches_numpy(self, tiny_dataset, tiny_program):
        dense = tiny_dataset.adjacency_csr().to_dense()
        assert np.allclose(tiny_program.reference_result(), dense @ dense)

    def test_tile_size_respected(self, tiny_dataset):
        a_csc = tiny_dataset.adjacency_csc()
        a_csr = tiny_dataset.adjacency_csr()
        program = compile_spgemm(a_csc, a_csr, tile_size=2)
        assert program.tile_size == 2
        assert all(op.opcode is Opcode.MMH2 for op in program.mmh_ops)
        assert all(len(op.a_rows) <= 2 and len(op.b_cols) <= 2
                   for op in program.mmh_ops)

    def test_invalid_tile_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            compile_spgemm(tiny_dataset.adjacency_csc(),
                           tiny_dataset.adjacency_csr(), tile_size=5)

    def test_dimension_mismatch(self):
        a = coo_to_csc(CSRMatrix.from_dense(np.ones((3, 4))).to_coo())
        b = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(ValueError):
            compile_spgemm(a, b)

    def test_row_groups_are_processed_in_order(self, tiny_program):
        """All MMH ops touching a row group appear before the next group starts."""
        tile = tiny_program.tile_size
        last_group = -1
        for op in tiny_program.mmh_ops:
            group = min(op.a_rows) // tile
            assert group >= last_group
            last_group = group

    def test_reseed_marks_one_boundary_per_row_group(self, tiny_program):
        n_boundaries = sum(1 for op in tiny_program.mmh_ops if op.reseed_after)
        assert n_boundaries == tiny_program.metadata["n_row_groups"]

    def test_instruction_encoding_is_decodable(self, tiny_program):
        for op in tiny_program.mmh_ops[:50]:
            decoded = decode_mmh(op.encode())
            assert decoded.opcode is op.opcode

    def test_operand_addresses_within_layout(self, tiny_program):
        layout = tiny_program.address_map
        for op in tiny_program.mmh_ops[:100]:
            addresses = op.operand_addresses()
            assert addresses["a_data"][0] >= layout.a_data_base
            assert addresses["b_data"][0] >= layout.b_data_base
            assert addresses["roll_counter"][0] >= layout.roll_counter_base

    def test_expand_haccs_counters_match_program(self, tiny_program):
        op = tiny_program.mmh_ops[0]
        for hacc in tiny_program.expand_haccs(op):
            assert hacc.counter == tiny_program.counters[(hacc.out_row, hacc.out_col)]
            assert hacc.tag == (hacc.out_row * tiny_program.shape[1] + hacc.out_col)

    def test_bloat_property(self, tiny_program):
        expected = (tiny_program.total_partial_products - tiny_program.output_nnz) \
            / tiny_program.output_nnz * 100.0
        assert tiny_program.bloat_percent == pytest.approx(expected)

    def test_binary_encoding_size(self, tiny_program):
        blob = tiny_program.encode_binary()
        assert len(blob) == 16 * tiny_program.n_instructions

    def test_empty_operands_give_empty_program(self):
        a = CSRMatrix.empty((8, 8))
        program = compile_spgemm(coo_to_csc(a.to_coo()), a)
        assert program.n_instructions == 0
        assert program.total_partial_products == 0
        assert program.bloat_percent == 0.0


class TestCompileGCN:
    def test_gcn_aggregation_label_and_correctness(self, tiny_dataset):
        features = feature_matrix(tiny_dataset.n_nodes, 12, density=0.4, seed=3)
        program = compile_gcn_aggregation(tiny_dataset.adjacency_csc(), features,
                                          dataset="probe")
        assert program.source == "gcn-aggregation:probe"
        reference = tiny_dataset.adjacency_csr().to_dense() @ features.to_dense()
        assert np.allclose(program.reference_result(), reference)
