"""Tests for the command-line interface (the Dashboard / NeuraViz stand-in)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "cora"
        assert args.config == "Tile-16"
        assert args.eviction == "rolling"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_invalid_eviction_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--eviction", "never"])

    def test_backend_and_impl_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.backend == "cycle"
        assert args.impl == "numpy"
        args = build_parser().parse_args(["batch"])
        assert args.backend == "analytic"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_invalid_impl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--impl", "fortran"])


class TestCommands:
    def test_datasets_lists_both_suites(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "cora" in out
        assert "Table-1" in out and "GNN" in out

    def test_bloat_selected_datasets(self, capsys):
        code = main(["bloat", "--datasets", "facebook", "wiki-Vote",
                     "--max-nodes", "96"])
        assert code == 0
        out = capsys.readouterr().out
        assert "facebook" in out and "wiki-Vote" in out
        assert "bloat_percent" in out

    def test_run_small_workload(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "80",
                     "--config", "Tile-4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wiki-Vote" in out
        assert "True" in out  # verified column

    def test_run_with_output_dir(self, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "run", "--dataset",
                     "wiki-Vote", "--max-nodes", "64", "--config", "Tile-4",
                     "--no-verify"])
        assert code == 0
        saved = list(tmp_path.glob("run_*.csv"))
        assert len(saved) == 1
        assert "cycles" in saved[0].read_text()

    def test_gcn_command(self, capsys):
        code = main(["gcn", "--dataset", "cora", "--max-nodes", "80",
                     "--config", "Tile-4", "--feature-dim", "8",
                     "--hidden-dim", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregation_cycles" in out

    def test_sweep_command_raw(self, capsys):
        code = main(["sweep", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--raw"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tile-4" in out and "Tile-64" in out

    def test_run_analytic_backend(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "96",
                     "--config", "Tile-4", "--backend", "analytic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert "cycles" in out

    def test_run_functional_backend(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "functional"])
        assert code == 0
        out = capsys.readouterr().out
        assert "functional" in out
        assert "partial_products" in out

    def test_gcn_analytic_backend(self, capsys):
        code = main(["gcn", "--dataset", "cora", "--max-nodes", "64",
                     "--config", "Tile-4", "--feature-dim", "8",
                     "--hidden-dim", "4", "--backend", "analytic"])
        assert code == 0
        assert "aggregation_cycles" in capsys.readouterr().out

    def test_batch_command_shares_compile_cache(self, capsys):
        code = main(["batch", "--datasets", "wiki-Vote", "--repeat", "3",
                     "--max-nodes", "64", "--config", "Tile-4",
                     "--backend", "analytic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compile_cache_hits" in out
        assert "wiki-Vote#2" in out

    def test_batch_with_output_dir(self, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "batch", "--datasets",
                     "wiki-Vote", "--max-nodes", "64", "--config", "Tile-4"])
        assert code == 0
        saved = list(tmp_path.glob("batch_*.csv"))
        assert len(saved) == 1
        assert "partial_products" in saved[0].read_text()
