"""Tests for the command-line interface (the Dashboard / NeuraViz stand-in)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "cora"
        assert args.config == "Tile-16"
        assert args.eviction == "rolling"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_invalid_eviction_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--eviction", "never"])

    def test_backend_and_impl_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.backend == "cycle"
        assert args.impl == "numpy"
        args = build_parser().parse_args(["batch"])
        assert args.backend == "analytic"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_invalid_impl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--impl", "fortran"])

    def test_session_flag_defaults(self):
        for command in ("run", "gcn", "sweep", "batch"):
            args = build_parser().parse_args([command])
            assert args.executor == "serial"
            assert args.workers is None
            assert args.cache_dir is None

    def test_invalid_executor_rejected(self):
        for command in ("run", "batch"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--executor", "gpu"])

    def test_unknown_backend_rejected_on_every_subcommand(self):
        for command in ("run", "gcn", "sweep", "batch"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--backend", "quantum"])


class TestCommands:
    def test_datasets_lists_both_suites(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "cora" in out
        assert "Table-1" in out and "GNN" in out

    def test_bloat_selected_datasets(self, capsys):
        code = main(["bloat", "--datasets", "facebook", "wiki-Vote",
                     "--max-nodes", "96"])
        assert code == 0
        out = capsys.readouterr().out
        assert "facebook" in out and "wiki-Vote" in out
        assert "bloat_percent" in out

    def test_run_small_workload(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "80",
                     "--config", "Tile-4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wiki-Vote" in out
        assert "True" in out  # verified column

    def test_run_with_output_dir(self, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "run", "--dataset",
                     "wiki-Vote", "--max-nodes", "64", "--config", "Tile-4",
                     "--no-verify"])
        assert code == 0
        saved = list(tmp_path.glob("run_*.csv"))
        assert len(saved) == 1
        assert "cycles" in saved[0].read_text()

    def test_gcn_command(self, capsys):
        code = main(["gcn", "--dataset", "cora", "--max-nodes", "80",
                     "--config", "Tile-4", "--feature-dim", "8",
                     "--hidden-dim", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregation_cycles" in out

    def test_sweep_command_raw(self, capsys):
        code = main(["sweep", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--raw"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tile-4" in out and "Tile-64" in out

    def test_run_analytic_backend(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "96",
                     "--config", "Tile-4", "--backend", "analytic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert "cycles" in out

    def test_run_functional_backend(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "functional"])
        assert code == 0
        out = capsys.readouterr().out
        assert "functional" in out
        assert "partial_products" in out

    def test_gcn_analytic_backend(self, capsys):
        code = main(["gcn", "--dataset", "cora", "--max-nodes", "64",
                     "--config", "Tile-4", "--feature-dim", "8",
                     "--hidden-dim", "4", "--backend", "analytic"])
        assert code == 0
        assert "aggregation_cycles" in capsys.readouterr().out

    def test_batch_command_shares_compile_cache(self, capsys):
        code = main(["batch", "--datasets", "wiki-Vote", "--repeat", "3",
                     "--max-nodes", "64", "--config", "Tile-4",
                     "--backend", "analytic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compile_cache_hits" in out
        assert "wiki-Vote#2" in out

    def test_batch_with_output_dir(self, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "batch", "--datasets",
                     "wiki-Vote", "--max-nodes", "64", "--config", "Tile-4"])
        assert code == 0
        saved = list(tmp_path.glob("batch_*.csv"))
        assert len(saved) == 1
        assert "partial_products" in saved[0].read_text()


class TestSessionIntegration:
    """The CLI routes every workload subcommand through a Session."""

    def test_unknown_config_is_a_clean_error(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-99", "--backend", "analytic"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Tile-99" in err

    def test_unknown_dataset_is_a_clean_error(self, capsys):
        code = main(["run", "--dataset", "no-such-graph", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "analytic"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_cache_dir_is_a_clean_error(self, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("x")
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "analytic",
                     "--cache-dir", str(blocker)])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_warm_cache_dir_reports_cache_hit(self, tmp_path, capsys):
        argv = ["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                "--config", "Tile-4", "--backend", "analytic",
                "--cache-dir", str(tmp_path / "programs")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "False" in cold  # first invocation compiles
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "True" in warm  # second invocation hits the disk cache
        assert list((tmp_path / "programs").glob("*.pkl"))

    def test_run_reports_wall_time_and_cache_columns(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "analytic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache_hit" in out
        assert "wall_time_s" in out

    def test_sharded_run_reports_shard_columns(self, capsys):
        argv = ["run", "--dataset", "wiki-Vote", "--max-nodes", "80",
                "--config", "Tile-4", "--backend", "analytic",
                "--shards", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "partial_products" in out

    def test_batch_thread_executor(self, capsys):
        code = main(["batch", "--datasets", "wiki-Vote", "--repeat", "2",
                     "--max-nodes", "64", "--config", "Tile-4",
                     "--executor", "thread", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "thread" in out
        assert "wall_time_s" in out


class TestMultiChipCommand:
    def test_multichip_run_reports_chip_columns(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "80",
                     "--config", "Tile-4", "--backend", "multichip",
                     "--chips", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chips" in out
        assert "shard_skew" in out
        assert "multichip" in out

    def test_chips_without_multichip_backend_is_a_clean_error(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "analytic",
                     "--chips", "4"])
        assert code == 2
        assert "multichip" in capsys.readouterr().err

    def test_chip_backend_without_multichip_is_a_clean_error(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "cycle",
                     "--chip-backend", "analytic"])
        assert code == 2
        assert "--chip-backend requires" in capsys.readouterr().err

    def test_multichip_backend_listed(self):
        args = build_parser().parse_args(["run", "--backend", "multichip",
                                          "--chips", "4",
                                          "--chip-backend", "cycle"])
        assert args.backend == "multichip"
        assert args.chips == 4
        assert args.chip_backend == "cycle"


class TestCacheCommand:
    def test_stats_on_empty_dir(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert str(tmp_path) in out

    def test_stats_then_clear_round_trip(self, tmp_path, capsys):
        assert main(["run", "--dataset", "wiki-Vote", "--max-nodes", "64",
                     "--config", "Tile-4", "--backend", "analytic",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "| 1 " in out or "| 1" in out  # one cached program
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.pkl"))

    def test_stats_on_missing_dir_does_not_create_it(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        assert "entries" in capsys.readouterr().out
        assert not missing.exists()

    def test_clear_missing_dir_is_a_noop(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
        assert "nothing to clear" in capsys.readouterr().out
        assert not missing.exists()

    def test_cache_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])


class TestServeCommand:
    def test_serve_flag_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8077
        assert args.backend == "analytic"
        assert args.max_batch == 8
        assert args.max_delay_ms == 5.0
        assert args.queue_depth == 256
        assert args.request_timeout == 60.0
        assert args.no_coalesce is False

    def test_serve_accepts_multichip_fleet(self):
        args = build_parser().parse_args(
            ["serve", "--backend", "multichip", "--chips", "4",
             "--port", "0", "--max-batch", "16"])
        assert args.chips == 4
        assert args.port == 0

    def test_serve_chips_without_multichip_is_a_clean_error(self, capsys):
        assert main(["serve", "--chips", "4", "--port", "0"]) == 2
        assert "multichip" in capsys.readouterr().err
