"""Unit tests for the GCN reference layer (Equation 2)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.gnn.gcn import (
    GCNLayer,
    GCNWorkload,
    gcn_forward_reference,
    normalize_adjacency,
    relu,
)
from repro.sparse.coo import COOMatrix


@pytest.fixture(scope="module")
def cora_small():
    return load_dataset("cora", max_nodes=128, seed=4)


class TestNormalization:
    def test_normalized_adjacency_is_symmetric_for_undirected_graph(self, cora_small):
        a_hat = normalize_adjacency(cora_small.adjacency).to_dense()
        assert np.allclose(a_hat, a_hat.T, atol=1e-12)

    def test_self_loops_added(self, cora_small):
        a_hat = normalize_adjacency(cora_small.adjacency)
        assert np.all(np.diag(a_hat.to_dense()) > 0)

    def test_without_self_loops(self, cora_small):
        a_hat = normalize_adjacency(cora_small.adjacency, add_self_loops=False)
        dense = cora_small.adjacency.to_dense()
        zero_diag_rows = np.where(np.diag(dense) == 0)[0]
        assert np.all(np.diag(a_hat.to_dense())[zero_diag_rows] == 0)

    def test_row_sums_bounded_by_one(self, cora_small):
        # Symmetric normalisation keeps the spectral radius at or below 1.
        a_hat = normalize_adjacency(cora_small.adjacency).to_dense()
        eigenvalues = np.linalg.eigvalsh(a_hat)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_isolated_node_does_not_divide_by_zero(self):
        adjacency = COOMatrix.from_edges([(0, 1), (1, 0)], shape=(3, 3))
        a_hat = normalize_adjacency(adjacency, add_self_loops=False)
        assert np.all(np.isfinite(a_hat.to_dense()))


class TestLayer:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_layer_dimensions(self):
        layer = GCNLayer.create(16, 8)
        assert layer.in_dim == 16 and layer.out_dim == 8

    def test_forward_equals_aggregation_then_combination(self, cora_small):
        layer = GCNLayer.create(12, 6, seed=0)
        a_hat = normalize_adjacency(cora_small.adjacency)
        features = np.random.default_rng(0).random((cora_small.n_nodes, 12))
        full = layer.forward(a_hat, features)
        split = layer.combination(layer.aggregation(a_hat, features))
        assert np.allclose(full, split)

    def test_relu_clamps_negative_outputs(self, cora_small):
        layer = GCNLayer.create(8, 4, seed=1)
        a_hat = normalize_adjacency(cora_small.adjacency)
        features = np.random.default_rng(1).standard_normal((cora_small.n_nodes, 8))
        assert np.all(layer.forward(a_hat, features) >= 0.0)

    def test_identity_activation(self, cora_small):
        layer = GCNLayer(weight=np.eye(4), activation="identity")
        a_hat = normalize_adjacency(cora_small.adjacency)
        features = np.random.default_rng(2).standard_normal((cora_small.n_nodes, 4))
        output = layer.forward(a_hat, features)
        assert np.allclose(output, a_hat.to_dense() @ features)

    def test_unknown_activation_rejected(self):
        layer = GCNLayer(weight=np.eye(2), activation="softplus")
        with pytest.raises(ValueError):
            layer.forward(normalize_adjacency(
                COOMatrix.from_edges([(0, 1)], (2, 2))), np.eye(2))


class TestWorkload:
    def test_build_produces_consistent_shapes(self, cora_small):
        workload = GCNWorkload.build(cora_small, feature_dim=20, hidden_dim=10)
        assert workload.features.shape == (cora_small.n_nodes, 20)
        assert workload.layer.weight.shape == (20, 10)
        assert workload.a_hat.shape == (cora_small.n_nodes, cora_small.n_nodes)

    def test_flop_accounting(self, cora_small):
        workload = GCNWorkload.build(cora_small, feature_dim=16, hidden_dim=8)
        assert workload.combination_flops() == 2 * cora_small.n_nodes * 16 * 8
        assert workload.aggregation_flops() > 0

    def test_reference_output_shape(self, cora_small):
        workload = GCNWorkload.build(cora_small, feature_dim=16, hidden_dim=8)
        assert workload.reference_output().shape == (cora_small.n_nodes, 8)

    def test_adjacency_csc_matches_a_hat(self, cora_small):
        workload = GCNWorkload.build(cora_small, feature_dim=8, hidden_dim=4)
        assert np.allclose(workload.adjacency_csc.to_dense(),
                           workload.a_hat.to_dense())


class TestMultiLayerReference:
    def test_two_layer_forward(self, cora_small):
        rng = np.random.default_rng(3)
        features = rng.random((cora_small.n_nodes, 10))
        weights = [rng.standard_normal((10, 6)), rng.standard_normal((6, 3))]
        output = gcn_forward_reference(cora_small.adjacency, features, weights)
        assert output.shape == (cora_small.n_nodes, 3)

    def test_single_layer_matches_gcnlayer_without_activation(self, cora_small):
        rng = np.random.default_rng(4)
        features = rng.random((cora_small.n_nodes, 5))
        weight = rng.standard_normal((5, 2))
        reference = gcn_forward_reference(cora_small.adjacency, features, [weight])
        layer = GCNLayer(weight=weight, activation="identity")
        direct = layer.forward(normalize_adjacency(cora_small.adjacency), features)
        assert np.allclose(reference, direct)
