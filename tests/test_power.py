"""Unit tests for the area / power model (Table 4, Table 5 derived rows)."""

import pytest

from repro.arch.config import GNN_TILE16, TILE16, TILE4, TILE64
from repro.power.model import (
    PowerModel,
    TABLE4_REFERENCE,
    area_breakdown,
    area_efficiency_gops_per_mm2,
    energy_efficiency_gops_per_watt,
    power_breakdown,
)


class TestTable4Reproduction:
    @pytest.mark.parametrize("config", [TILE4, TILE16, TILE64])
    def test_area_matches_paper_totals(self, config):
        breakdown = area_breakdown(config)
        paper_total = TABLE4_REFERENCE["Total"][config.name][0]
        assert breakdown.total_area_mm2 == pytest.approx(paper_total, rel=1e-6)

    @pytest.mark.parametrize("config", [TILE4, TILE16, TILE64])
    def test_full_activity_power_matches_paper_totals(self, config):
        breakdown = power_breakdown(config)  # activity defaults to 1.0
        paper_total = TABLE4_REFERENCE["Total"][config.name][1]
        assert breakdown.total_power_w == pytest.approx(paper_total, rel=1e-6)

    @pytest.mark.parametrize("config,unit", [
        (TILE4, "NeuraCore"), (TILE16, "NeuraMem"), (TILE64, "Router"),
        (TILE16, "Memory Controller"),
    ])
    def test_per_unit_values_match_paper(self, config, unit):
        area = area_breakdown(config).area_mm2[unit]
        power = power_breakdown(config).power_w[unit]
        assert area == pytest.approx(TABLE4_REFERENCE[unit][config.name][0], rel=1e-6)
        assert power == pytest.approx(TABLE4_REFERENCE[unit][config.name][1], rel=1e-6)

    def test_neuramem_dominates_area(self):
        """The paper notes most of the area goes to the NeuraMem units."""
        breakdown = area_breakdown(TILE64)
        assert breakdown.area_mm2["NeuraMem"] == max(breakdown.area_mm2.values())

    def test_table_rows_include_total(self):
        rows = PowerModel().combined(TILE16).as_table_rows()
        assert rows[-1]["unit"] == "Total"
        assert rows[-1]["area_mm2"] == pytest.approx(10.2, abs=0.05)


class TestActivityScaling:
    def test_idle_power_below_full_activity(self):
        idle = power_breakdown(TILE16, activity={"NeuraCore": 0.0, "NeuraMem": 0.0,
                                                 "Router": 0.0,
                                                 "Memory Controller": 0.0})
        busy = power_breakdown(TILE16)
        assert idle.total_power_w < busy.total_power_w
        assert idle.total_power_w >= busy.total_power_w * PowerModel.STATIC_FRACTION - 1e-9

    def test_activity_is_clamped(self):
        over = power_breakdown(TILE16, activity={"NeuraCore": 5.0})
        full = power_breakdown(TILE16, activity={"NeuraCore": 1.0})
        assert over.power_w["NeuraCore"] == pytest.approx(full.power_w["NeuraCore"])

    def test_partial_activity_between_bounds(self):
        half = power_breakdown(TILE16, activity={"NeuraCore": 0.5})
        idle = power_breakdown(TILE16, activity={"NeuraCore": 0.0})
        full = power_breakdown(TILE16, activity={"NeuraCore": 1.0})
        assert idle.power_w["NeuraCore"] < half.power_w["NeuraCore"] \
            < full.power_w["NeuraCore"]


class TestCustomConfigurations:
    def test_gnn_config_uses_nearest_reference(self):
        breakdown = area_breakdown(GNN_TILE16)
        # 2048 NeuraCores at the Tile-64 per-core area: much larger than Tile-64.
        assert breakdown.total_area_mm2 > area_breakdown(TILE64).total_area_mm2

    def test_area_scales_with_component_count(self):
        assert area_breakdown(TILE64).total_area_mm2 > \
            area_breakdown(TILE16).total_area_mm2 > \
            area_breakdown(TILE4).total_area_mm2


class TestDerivedEfficiencies:
    def test_energy_efficiency_matches_table5(self):
        # Table 5: Tile-16 achieves 24.75 GOP/s at 16.06 W -> 1.541 GOPS/W.
        assert energy_efficiency_gops_per_watt(24.75, 16.06) == pytest.approx(1.541,
                                                                              abs=0.01)

    def test_area_efficiency_matches_table5(self):
        # Table 5: Tile-16 achieves 24.75 GOP/s on 10.2 mm^2 -> 2.426 GOPS/mm^2.
        assert area_efficiency_gops_per_mm2(24.75, 10.2) == pytest.approx(2.426,
                                                                          abs=0.01)

    def test_zero_denominators(self):
        assert energy_efficiency_gops_per_watt(10.0, 0.0) == 0.0
        assert area_efficiency_gops_per_mm2(10.0, 0.0) == 0.0
