"""Known-good lock discipline for the lockcheck fixture tests."""

import threading


class GoodCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self._worker = None

    def record(self, key, value):
        with self._lock:
            self._entries[key] = value
            self.hits += 1

    def sweep_locked(self):  # lockcheck: holds _lock
        self._entries.clear()

    def sweep(self):
        with self._lock:
            self.sweep_locked()

    def snapshot(self):
        with self._lock:
            return dict(self._entries), self.hits

    def start(self):
        self._worker = threading.Thread(target=self.sweep, daemon=True)
        self._worker.start()

    def stop(self):
        if self._worker is not None:
            self._worker.join()


def explicit_acquire(lock):
    lock.acquire()
    try:
        return True
    finally:
        lock.release()
