"""Known-bad lock discipline for the lockcheck fixture tests.

Every defect class the lint reports appears exactly once:
``guard-violation`` (an unguarded assignment *and* an unguarded mutating
method call), ``bare-acquire`` and ``unjoined-thread``.
"""

import threading


class BadCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock

    def record(self, key, value):
        self._entries[key] = value  # mutation without the lock
        self.hits += 1  # and an unguarded augmented assignment

    def sweep(self):
        self._entries.clear()  # unguarded mutating method call

    def risky(self):
        self._lock.acquire()  # no with, no try/finally
        count = self.hits
        self._lock.release()
        return count


def spawn_forever():
    worker = threading.Thread(target=spawn_forever)
    worker.start()
    return worker
