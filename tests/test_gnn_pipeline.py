"""Resident-graph GNN pipelines: byte-identity against the chained
layer-at-a-time path, compile-once cache behaviour, adjacency memoization,
serving coalescing, and the cross-chip pipelining model."""

import numpy as np
import pytest

from repro.core import Session
from repro.core.specs import ChipTopology, GCNLayerSpec, GNNModelSpec
from repro.datasets import load_dataset
from repro.gnn import (
    adjacency_cache_stats,
    clear_adjacency_cache,
    full_structure_csr,
)
from repro.serve.batcher import MicroBatcher, RequestQueue, _coalesce_key
from repro.sparse.coo import COOMatrix

BACKENDS = ("functional", "analytic", "multichip")
DIMS = {1: (8,), 2: (8, 4), 4: (8, 8, 4, 4), 10: (8,) * 10}


def make_session(backend, executor="serial", **kwargs):
    if backend == "multichip":
        kwargs.setdefault("topology",
                          ChipTopology(n_chips=2, chip_backend="analytic"))
    return Session("Tile-16", backend=backend, executor=executor, **kwargs)


def chained_reference(session, dataset, layer_dims, feature_dim, seed=7):
    """The stacked spec's ground truth: one GCNLayerSpec per layer, layer
    i+1 fed layer i's output through ``features``, weights seeded exactly
    like the stack (``seed + 1 + i``)."""
    x = None
    for index, out_dim in enumerate(layer_dims):
        result = session.run(GCNLayerSpec(
            dataset=dataset, feature_dim=feature_dim, hidden_dim=out_dim,
            seed=seed, features=x, weight_seed=seed + 1 + index,
            label=f"chain[{index}]"))
        x = result.output
    return x


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora", max_nodes=60, seed=0)


class TestByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_stack_matches_chain(self, cora, backend, depth):
        dims = DIMS[depth]
        with make_session(backend) as session:
            stacked = session.run(GNNModelSpec(
                dataset=cora, layer_dims=dims, feature_dim=8)).output
            chained = chained_reference(session, cora, dims, 8)
        assert stacked.shape == (cora.n_nodes, dims[-1])
        assert np.array_equal(stacked, chained)

    def test_depth_10_stack_matches_chain(self, cora):
        dims = DIMS[10]
        with make_session("analytic") as session:
            stacked = session.run(GNNModelSpec(
                dataset=cora, layer_dims=dims, feature_dim=8)).output
            chained = chained_reference(session, cora, dims, 8)
        assert np.array_equal(stacked, chained)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_stack_through_every_executor(self, cora, executor):
        dims = DIMS[2]
        spec = GNNModelSpec(dataset=cora, layer_dims=dims, feature_dim=8)
        with make_session("analytic", executor=executor, workers=2) as session:
            stacked = session.map([spec])[0].output
        with make_session("analytic") as session:
            chained = chained_reference(session, cora, dims, 8)
        assert np.array_equal(stacked, chained)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_graph(self, backend):
        empty = np.array([], dtype=np.int64)
        adjacency = COOMatrix(empty, empty, np.array([], dtype=np.float64),
                              (5, 5))
        with make_session(backend) as session:
            stacked = session.run(GNNModelSpec(
                dataset=adjacency, layer_dims=(4, 2), feature_dim=4)).output
            chained = chained_reference(session, adjacency, (4, 2), 4)
        assert stacked.shape == (5, 2)
        assert np.array_equal(stacked, chained)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_node_graph(self, backend):
        adjacency = COOMatrix(np.array([0]), np.array([0]),
                              np.array([1.0]), (1, 1))
        with make_session(backend) as session:
            stacked = session.run(GNNModelSpec(
                dataset=adjacency, layer_dims=(4, 2), feature_dim=4)).output
            chained = chained_reference(session, adjacency, (4, 2), 4)
        assert stacked.shape == (1, 2)
        assert np.array_equal(stacked, chained)


class TestCompileOnce:
    def test_uniform_stack_compiles_once(self, cora):
        with make_session("analytic") as session:
            spec = GNNModelSpec(dataset=cora, layer_dims=(8, 8, 8, 8),
                                feature_dim=8)
            first = session.run(spec)
            assert first.metrics["compiles"] == 1
            assert first.provenance.cache_hit is False
            second = session.run(spec)
            assert second.metrics["compiles"] == 0
            assert second.provenance.cache_hit is True
            assert np.array_equal(first.output, second.output)

    def test_mixed_width_stack_compiles_per_structure(self, cora):
        # Feature widths down the stack are 8, 8, 4, 8 -> two distinct
        # operand structures -> exactly two compiles.
        with make_session("analytic") as session:
            result = session.run(GNNModelSpec(
                dataset=cora, layer_dims=(8, 4, 8, 4), feature_dim=8))
        assert result.metrics["compiles"] == 2

    def test_multichip_compiles_once_per_unit(self, cora):
        with make_session("multichip") as session:
            spec = GNNModelSpec(dataset=cora, layer_dims=(8, 8, 8),
                                feature_dim=8)
            first = session.run(spec)
            # One compile per resident shard unit, all on layer 0; layers
            # 1..L-1 re-bind the resident programs.
            assert first.metrics["compiles"] == first.provenance.chips
            second = session.run(spec)
            assert second.metrics["compiles"] == 0
            assert np.array_equal(first.output, second.output)


class TestAdjacencyMemo:
    def test_stack_hits_memo_on_rerun(self, cora):
        clear_adjacency_cache()
        spec = GNNModelSpec(dataset=cora, layer_dims=(4, 4), feature_dim=4)
        with make_session("analytic") as session:
            session.run(spec)
            stats = adjacency_cache_stats()
            assert stats["misses"] == 1
            assert stats["entries"] == 1
            session.run(spec)
            again = adjacency_cache_stats()
            assert again["misses"] == 1
            assert again["hits"] >= 1

    def test_gcn_layer_shares_the_memo(self, cora):
        clear_adjacency_cache()
        with make_session("analytic") as session:
            session.run(GCNLayerSpec(dataset=cora, feature_dim=4,
                                     hidden_dim=4))
            session.run(GNNModelSpec(dataset=cora, layer_dims=(4,),
                                     feature_dim=4))
        stats = adjacency_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 1

    def test_capacity_is_bounded(self):
        stats = adjacency_cache_stats()
        assert stats["entries"] <= stats["capacity"]


class TestPipelining:
    def test_single_batch_has_no_pipeline_win(self, cora):
        with make_session("analytic") as session:
            metrics = session.run(GNNModelSpec(
                dataset=cora, layer_dims=(8, 8), feature_dim=8)).metrics
        assert metrics["batches"] == 1
        assert metrics["pipeline_cycles"] == metrics["total_cycles"]
        assert metrics["pipeline_speedup"] == 1.0

    def test_uniform_stack_pipelines_at_depth_over_stages(self, cora):
        # Uniform layers -> bottleneck == stack/3; 4 batches pipeline to
        # stack + 3 * bottleneck = 2 * stack -> speedup 2.0.
        with make_session("analytic") as session:
            metrics = session.run(GNNModelSpec(
                dataset=cora, layer_dims=(8, 8, 8), feature_dim=8,
                batches=4)).metrics
        assert metrics["pipeline_speedup"] == pytest.approx(2.0, rel=0.01)
        assert metrics["pipeline_cycles"] < metrics["batches"] * \
            metrics["total_cycles"]


class TestFullStructureEncoding:
    def test_structure_is_shape_determined(self):
        a = full_structure_csr(np.zeros((3, 4)))
        b = full_structure_csr(np.arange(12, dtype=np.float64).reshape(3, 4))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert a.nnz == 12  # explicit zeros are kept

    def test_values_round_trip(self):
        dense = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert np.array_equal(full_structure_csr(dense).to_dense(), dense)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            full_structure_csr(np.zeros(3))


class TestSpecValidation:
    def test_requires_dataset(self):
        with pytest.raises(ValueError, match="dataset"):
            GNNModelSpec()

    def test_rejects_empty_layer_dims(self, cora):
        with pytest.raises(ValueError):
            GNNModelSpec(dataset=cora, layer_dims=())

    def test_rejects_bad_batches(self, cora):
        with pytest.raises(ValueError):
            GNNModelSpec(dataset=cora, batches=0)

    def test_rejects_activation_length_mismatch(self, cora):
        with pytest.raises(ValueError):
            GNNModelSpec(dataset=cora, layer_dims=(8, 4),
                         activations=("relu",))


class TestServingCoalescing:
    def test_identical_stacks_share_a_key(self, cora):
        first = _coalesce_key(GNNModelSpec(dataset=cora, layer_dims=(8, 4),
                                           feature_dim=8, label="a"))
        second = _coalesce_key(GNNModelSpec(dataset=cora, layer_dims=(8, 4),
                                            feature_dim=8, label="b"))
        assert first is not None
        assert first == second

    def test_different_dims_differ(self, cora):
        first = _coalesce_key(GNNModelSpec(dataset=cora, layer_dims=(8, 4),
                                           feature_dim=8))
        second = _coalesce_key(GNNModelSpec(dataset=cora, layer_dims=(8, 8),
                                            feature_dim=8))
        assert first != second

    def test_gcn_layer_coalesces_unless_features_are_explicit(self, cora):
        synthetic = GCNLayerSpec(dataset=cora, feature_dim=8, hidden_dim=4)
        explicit = GCNLayerSpec(dataset=cora, feature_dim=8, hidden_dim=4,
                                features=np.ones((cora.n_nodes, 8)))
        assert _coalesce_key(synthetic) is not None
        assert _coalesce_key(explicit) is None

    def test_batcher_coalesces_and_counts_stacks(self, cora):
        specs = [GNNModelSpec(dataset=cora, layer_dims=(4, 4), feature_dim=4,
                              label=str(index)) for index in range(3)]
        with make_session("analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue, max_batch=8,
                                   max_delay_ms=5.0)
            requests = [queue.put(spec) for spec in specs]
            batcher.start()
            try:
                results = [request.future.result(timeout=60)
                           for request in requests]
            finally:
                batcher.stop()
        assert np.array_equal(results[0].output, results[1].output)
        snapshot = batcher.stats.snapshot()
        assert snapshot["gnn_stacks"] >= 1
        assert snapshot["gnn_layers"] == 2 * snapshot["gnn_stacks"]
        assert snapshot["gnn_last_depth"] == 2
        assert snapshot["coalesced"] >= 1
