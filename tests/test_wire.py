"""Binary wire codec + operand registry: framing, eviction, HTTP surface.

Three layers under test:

* the :mod:`repro.serve.wire` codec — round-trips must be byte-exact and
  every truncated / padded / malformed frame must raise
  :class:`WireFormatError` (the HTTP layer's 400);
* the :class:`~repro.serve.registry.OperandRegistry` — content-addressed
  idempotent puts, LRU eviction under byte pressure, pin semantics, and
  ref resolution stamping coalescer digests;
* the HTTP front-end — operand upload/download/delete endpoints, content
  negotiation (415 / 406 / binary Accept), 413 rejection before body
  buffering, ref-request byte-identity with the inline path on both
  ``/v1/spgemm`` and ``/v1/gcn``, and coalescing across inline + ref
  requests for the same matrix.
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import Session, SpGEMMSpec
from repro.core.runner import matrix_fingerprint
from repro.core.specs import GCNLayerSpec, OperandRef
from repro.datasets import load_dataset
from repro.serve import BackgroundServer, ReproServer
from repro.serve.registry import (
    OperandPinned,
    OperandRegistry,
    RegistryFull,
    UnknownOperand,
)
from repro.serve.wire import (
    HEADER_BYTES,
    WIRE_CONTENT_TYPE,
    WireFormatError,
    decode_csr,
    encode_csr,
    encode_csr_frames,
    frames_nbytes,
)
from repro.sparse.csr import CSRMatrix


def _csr(seed: int = 0, n: int = 32) -> CSRMatrix:
    return load_dataset("wiki-Vote", max_nodes=n, seed=seed).adjacency_csr()


def _operand_json(csr: CSRMatrix) -> dict:
    return {"indptr": csr.indptr.tolist(), "indices": csr.indices.tolist(),
            "data": csr.data.tolist(), "shape": list(csr.shape)}


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_round_trip_byte_exact(self):
        csr = _csr(seed=3, n=64)
        decoded, meta = decode_csr(encode_csr(csr))
        assert meta is None
        assert decoded.shape == csr.shape
        assert np.array_equal(decoded.indptr, csr.indptr)
        assert np.array_equal(decoded.indices, csr.indices)
        assert decoded.data.tobytes() == csr.data.tobytes()

    def test_round_trip_with_metadata(self):
        csr = _csr()
        meta = {"cycles": 123.5, "label": "probe", "nested": {"ok": True}}
        decoded, got = decode_csr(encode_csr(csr, meta=meta))
        assert got == meta
        assert np.array_equal(decoded.indices, csr.indices)

    def test_frames_concatenate_to_frame(self):
        csr = _csr()
        frames = encode_csr_frames(csr, meta={"x": 1})
        assert len(frames) == 4  # header+meta, indptr, indices, data
        assert b"".join(bytes(frame) for frame in frames) \
            == encode_csr(csr, meta={"x": 1})
        assert frames_nbytes(frames) == len(encode_csr(csr, meta={"x": 1}))

    def test_empty_matrix_round_trips(self):
        empty = CSRMatrix(np.zeros(5, dtype=np.int64),
                          np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.float64), (4, 7))
        decoded, _ = decode_csr(encode_csr(empty))
        assert decoded.shape == (4, 7)
        assert decoded.nnz == 0

    def test_truncated_header_rejected(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_csr(encode_csr(_csr())[:HEADER_BYTES - 1])

    def test_truncated_payload_rejected(self):
        body = encode_csr(_csr())
        with pytest.raises(WireFormatError, match="length mismatch"):
            decode_csr(body[:-8])

    def test_padded_payload_rejected(self):
        with pytest.raises(WireFormatError, match="length mismatch"):
            decode_csr(encode_csr(_csr()) + b"\x00" * 4)

    def test_bad_magic_rejected(self):
        body = bytearray(encode_csr(_csr()))
        body[:4] = b"NOPE"
        with pytest.raises(WireFormatError, match="magic"):
            decode_csr(bytes(body))

    def test_unknown_version_rejected(self):
        body = bytearray(encode_csr(_csr()))
        body[4] = 99
        with pytest.raises(WireFormatError, match="version"):
            decode_csr(bytes(body))

    def test_reserved_flag_bits_rejected(self):
        body = bytearray(encode_csr(_csr()))
        body[5] |= 0x80
        with pytest.raises(WireFormatError, match="reserved"):
            decode_csr(bytes(body))

    def test_undecodable_metadata_rejected(self):
        csr = _csr()
        good = encode_csr(csr, meta={"abc": 1})
        # Corrupt the JSON blob in place: same length, invalid content.
        blob = bytearray(good)
        blob[HEADER_BYTES:HEADER_BYTES + 10] = b"\xff" * 10
        with pytest.raises(WireFormatError, match="metadata"):
            decode_csr(bytes(blob))

    def test_structurally_invalid_csr_rejected(self):
        csr = _csr()
        body = bytearray(encode_csr(csr))
        # Point the first column index out of range.
        offset = HEADER_BYTES + csr.indptr.nbytes
        body[offset:offset + 8] = (2 ** 40).to_bytes(8, "little")
        with pytest.raises(WireFormatError, match="valid CSR"):
            decode_csr(bytes(body))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestOperandRegistry:
    def test_put_is_content_addressed_and_idempotent(self):
        registry = OperandRegistry(1 << 20)
        csr = _csr()
        entry, created = registry.put(csr)
        assert created
        assert entry.digest == matrix_fingerprint(csr)
        again, created = registry.put(csr)
        assert not created
        assert again is entry
        assert len(registry) == 1

    def test_get_touches_lru_and_counts_hits(self):
        registry = OperandRegistry(1 << 20)
        entry, _ = registry.put(_csr())
        assert registry.get(entry.digest).hits == 1
        assert registry.stats()["registry_hits"] == 1
        with pytest.raises(UnknownOperand):
            registry.get("no-such-digest")
        assert registry.stats()["registry_misses"] == 1

    def test_eviction_under_size_pressure(self):
        a, b = _csr(seed=1, n=48), _csr(seed=2, n=48)
        nbytes = a.indptr.nbytes + a.indices.nbytes + a.data.nbytes
        registry = OperandRegistry(int(nbytes * 1.5))
        first, _ = registry.put(a)
        second, _ = registry.put(b)  # over cap: LRU (a) must go
        assert first.digest not in registry
        assert second.digest in registry
        assert registry.stats()["registry_evictions"] == 1
        assert registry.nbytes <= registry.max_bytes

    def test_pinned_entry_survives_sweep_until_release(self):
        a, b = _csr(seed=1, n=48), _csr(seed=2, n=48)
        nbytes = a.indptr.nbytes + a.indices.nbytes + a.data.nbytes
        registry = OperandRegistry(int(nbytes * 1.5))
        first, _ = registry.put(a)
        pin = registry.acquire(first.digest)
        registry.put(b)  # over cap, but the LRU entry is pinned
        assert first.digest in registry  # transient overage
        pin.release()  # sweep on release evicts the now-unpinned LRU
        assert first.digest not in registry
        pin.release()  # idempotent
        assert registry.nbytes <= registry.max_bytes

    def test_delete_unknown_and_pinned(self):
        registry = OperandRegistry(1 << 20)
        entry, _ = registry.put(_csr())
        pin = registry.acquire(entry.digest)
        with pytest.raises(OperandPinned):
            registry.delete(entry.digest)
        pin.release()
        registry.delete(entry.digest)
        with pytest.raises(UnknownOperand):
            registry.delete(entry.digest)

    def test_single_operand_over_cap_rejected(self):
        with pytest.raises(RegistryFull):
            OperandRegistry(16).put(_csr())

    def test_resolve_swaps_refs_and_stamps_digests(self):
        registry = OperandRegistry(1 << 20)
        a, b = _csr(seed=1), _csr(seed=2)
        ea, _ = registry.put(a)
        eb, _ = registry.put(b)
        spec = SpGEMMSpec(a=OperandRef(ea.digest), b=OperandRef(eb.digest),
                          verify=False)
        resolved, pins = registry.resolve(spec)
        assert resolved.a is ea.csr and resolved.b is eb.csr
        assert resolved.a_digest == ea.digest
        assert resolved.b_digest == eb.digest
        assert len(pins) == 2
        assert spec.a == OperandRef(ea.digest)  # original untouched
        for pin in pins:
            pin.release()

    def test_resolve_dangling_ref_releases_taken_pins(self):
        registry = OperandRegistry(1 << 20)
        entry, _ = registry.put(_csr())
        spec = SpGEMMSpec(a=OperandRef(entry.digest),
                          b=OperandRef("dangling"), verify=False)
        with pytest.raises(UnknownOperand):
            registry.resolve(spec)
        assert registry.get(entry.digest).refcount == 0

    def test_resolve_passes_through_non_spgemm(self):
        registry = OperandRegistry(1 << 20)
        spec = GCNLayerSpec(dataset=object())
        assert registry.resolve(spec) == (spec, ())


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def session():
    with Session("Tile-4", backend="analytic") as session:
        yield session


@pytest.fixture(scope="module")
def server(session):
    with BackgroundServer(ReproServer(session, port=0, max_batch=4,
                                      max_delay_ms=2.0)) as background:
        yield background.server


def raw_request(server, method, path, body=b"", headers=None):
    """One request returning (status, content_type, raw body bytes)."""
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=60)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read())
    finally:
        connection.close()


def json_request(server, method, path, payload=None, headers=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    status, _ctype, raw = raw_request(server, method, path, body,
                                      headers=headers)
    return status, json.loads(raw)


class TestOperandEndpoints:
    def test_binary_upload_and_metadata(self, server):
        csr = _csr(seed=7, n=64)
        status, row = json_request(
            server, "PUT", "/v1/operands", headers={
                "Content-Type": WIRE_CONTENT_TYPE})
        # empty binary body is a malformed frame
        assert status == 400

        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            connection.request("PUT", "/v1/operands", body=encode_csr(csr),
                               headers={"Content-Type": WIRE_CONTENT_TYPE})
            response = connection.getresponse()
            row = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 200
        assert row["ref"] == matrix_fingerprint(csr)
        assert row["created"] is True
        assert row["nnz"] == csr.nnz
        status, meta = json_request(server, "GET",
                                    f"/v1/operands/{row['ref']}")
        assert status == 200
        assert meta["shape"] == list(csr.shape)

    def test_json_and_dataset_uploads(self, server):
        csr = _csr(seed=11, n=48)
        status, row = json_request(server, "PUT", "/v1/operands",
                                   _operand_json(csr))
        assert status == 200
        assert row["ref"] == matrix_fingerprint(csr)
        status, row = json_request(server, "PUT", "/v1/operands",
                                   {"dataset": "cora", "max_nodes": 64})
        assert status == 200
        assert row["source"] == "cora"
        assert row["dataset_backed"] is True

    def test_operand_listing(self, server):
        status, row = json_request(server, "GET", "/v1/operands")
        assert status == 200
        assert "operands" in row and "registry_bytes" in row

    def test_binary_download_round_trips(self, server):
        csr = _csr(seed=13, n=64)
        status, row = json_request(server, "PUT", "/v1/operands",
                                   _operand_json(csr))
        assert status == 200
        status, ctype, frame = raw_request(
            server, "GET", f"/v1/operands/{row['ref']}",
            headers={"Accept": WIRE_CONTENT_TYPE})
        assert status == 200
        assert ctype == WIRE_CONTENT_TYPE
        downloaded, meta = decode_csr(frame)
        assert downloaded.indptr.tobytes() == csr.indptr.tobytes()
        assert downloaded.indices.tobytes() == csr.indices.tobytes()
        assert downloaded.data.tobytes() == csr.data.tobytes()
        assert meta["ref"] == row["ref"]

    def test_unknown_ref_404(self, server):
        assert json_request(server, "GET", "/v1/operands/bogus")[0] == 404
        assert json_request(server, "DELETE", "/v1/operands/bogus")[0] == 404
        status, row = json_request(server, "POST", "/v1/spgemm",
                                   {"a": {"ref": "bogus"}})
        assert status == 404
        assert "bogus" in row["error"]
        status, _ = json_request(server, "POST", "/v1/gcn",
                                 {"dataset": {"ref": "bogus"}})
        assert status == 404

    def test_delete(self, server):
        csr = _csr(seed=17, n=40)
        _, row = json_request(server, "PUT", "/v1/operands",
                              _operand_json(csr))
        assert json_request(server, "DELETE",
                            f"/v1/operands/{row['ref']}")[0] == 200
        assert json_request(server, "GET",
                            f"/v1/operands/{row['ref']}")[0] == 404

    def test_pinned_delete_409(self, server):
        csr = _csr(seed=19, n=40)
        _, row = json_request(server, "PUT", "/v1/operands",
                              _operand_json(csr))
        pin = server.registry.acquire(row["ref"])
        try:
            status, body = json_request(server, "DELETE",
                                        f"/v1/operands/{row['ref']}")
            assert status == 409
            assert "pinned" in body["error"]
        finally:
            pin.release()
        assert json_request(server, "DELETE",
                            f"/v1/operands/{row['ref']}")[0] == 200

    def test_malformed_binary_upload_400(self, server):
        status, row = json_request(
            server, "PUT", "/v1/operands",
            headers={"Content-Type": WIRE_CONTENT_TYPE})
        assert status == 400
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            truncated = encode_csr(_csr())[:-10]
            connection.request("PUT", "/v1/operands", body=truncated,
                               headers={"Content-Type": WIRE_CONTENT_TYPE})
            response = connection.getresponse()
            row = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "x-repro-csr" in row["error"]

    def test_registry_eviction_over_http(self, session):
        csr = _csr(seed=23, n=48)
        nbytes = csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes
        tiny = ReproServer(session, port=0,
                           registry_max_bytes=int(nbytes * 1.5))
        with BackgroundServer(tiny) as background:
            server = background.server
            _, first = json_request(server, "PUT", "/v1/operands",
                                    _operand_json(csr))
            other = _csr(seed=29, n=48)
            _, second = json_request(server, "PUT", "/v1/operands",
                                     _operand_json(other))
            status, stats = json_request(server, "GET", "/stats")
            assert stats["registry_evictions"] == 1
            assert stats["registry_entries"] == 1
            # The evicted ref now dangles: 404, not a silent recompute.
            assert json_request(server, "POST", "/v1/spgemm",
                                {"a": {"ref": first["ref"]}})[0] == 404
            assert json_request(server, "POST", "/v1/spgemm",
                                {"a": {"ref": second["ref"]}})[0] == 200


class TestContentNegotiation:
    def test_unsupported_content_type_415(self, server):
        status, _ctype, raw = raw_request(
            server, "POST", "/v1/spgemm", b"<xml/>",
            headers={"Content-Type": "text/xml"})
        assert status == 415
        assert b"application/json" in raw

    def test_413_rejected_before_body_buffering(self, server):
        """An oversized Content-Length is refused from the headers alone:
        the 413 arrives while the body remains unsent."""
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(b"POST /v1/spgemm HTTP/1.1\r\n"
                         b"Host: x\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: 99999999999\r\n\r\n")
            # No body bytes follow; a server that buffered first would
            # block on the read and time this recv out.
            sock.settimeout(5.0)
            head = sock.recv(4096)
        assert b"413" in head.split(b"\r\n", 1)[0]

    def test_gcn_binary_accept_406(self, server):
        status, row = json_request(server, "POST", "/v1/gcn",
                                   {"dataset": "cora", "max_nodes": 48},
                                   headers={"Accept": WIRE_CONTENT_TYPE})
        assert status == 406
        assert "dense" in row["error"]

    def test_binary_response_errors_stay_json(self, server):
        # An error on a binary-Accept request must come back as JSON.
        status, ctype, raw = raw_request(
            server, "POST", "/v1/spgemm", b"not json",
            headers={"Content-Type": "application/json",
                     "Accept": WIRE_CONTENT_TYPE})
        assert status == 400
        assert ctype == "application/json"


class TestRefServingByteIdentity:
    def test_spgemm_ref_byte_identical_to_inline(self, server, session):
        csr = _csr(seed=31, n=96)
        direct = session.run(SpGEMMSpec(a=csr, verify=False))
        _, up = json_request(server, "PUT", "/v1/operands",
                             _operand_json(csr))
        status, row = json_request(server, "POST", "/v1/spgemm",
                                   {"a": {"ref": up["ref"]},
                                    "include_output": True})
        assert status == 200
        assert np.array_equal(np.asarray(row["output"]["indptr"]),
                              direct.output.indptr)
        assert np.array_equal(np.asarray(row["output"]["indices"]),
                              direct.output.indices)
        assert np.asarray(row["output"]["data"]).tobytes() \
            == direct.output.data.tobytes()

    def test_spgemm_binary_response_byte_identical(self, server, session):
        csr = _csr(seed=31, n=96)
        direct = session.run(SpGEMMSpec(a=csr, verify=False))
        _, up = json_request(server, "PUT", "/v1/operands",
                             _operand_json(csr))
        status, ctype, frame = raw_request(
            server, "POST", "/v1/spgemm",
            json.dumps({"a": {"ref": up["ref"]}}).encode(),
            headers={"Content-Type": "application/json",
                     "Accept": WIRE_CONTENT_TYPE})
        assert status == 200
        assert ctype == WIRE_CONTENT_TYPE
        product, meta = decode_csr(frame)
        assert product.indptr.tobytes() == direct.output.indptr.tobytes()
        assert product.indices.tobytes() == direct.output.indices.tobytes()
        assert product.data.tobytes() == direct.output.data.tobytes()
        assert meta["cycles"] == direct.metrics["cycles"]
        assert meta["kind"] == "spgemm"

    def test_gcn_dataset_ref_identical_to_inline(self, server):
        _, up = json_request(server, "PUT", "/v1/operands",
                             {"dataset": "cora", "max_nodes": 72,
                              "seed": 3})
        payload = {"feature_dim": 8, "hidden_dim": 4, "seed": 3}
        status, by_ref = json_request(
            server, "POST", "/v1/gcn",
            {"dataset": {"ref": up["ref"]}, **payload})
        assert status == 200
        status, inline = json_request(
            server, "POST", "/v1/gcn",
            {"dataset": "cora", "max_nodes": 72, "seed": 3, **payload})
        assert status == 200
        for key in ("cycles", "aggregation_cycles", "output_nnz"):
            if key in inline:
                assert by_ref[key] == inline[key], key
        assert by_ref["label"] == inline["label"] == "cora"

    def test_gcn_bare_csr_ref_serves(self, server):
        csr = _csr(seed=37, n=48)
        _, up = json_request(server, "PUT", "/v1/operands",
                             _operand_json(csr))
        status, row = json_request(
            server, "POST", "/v1/gcn",
            {"dataset": {"ref": up["ref"]}, "feature_dim": 4,
             "hidden_dim": 2})
        assert status == 200
        assert row["label"].startswith("ref:")


class TestCoalescingAcrossInlineAndRef:
    def test_inline_and_ref_requests_coalesce(self, session):
        """One inline request and one ref request for the same matrix in
        one micro-batch execute once: the registry digest IS the operand
        fingerprint, so the coalescer keys them identically."""
        csr = _csr(seed=41, n=64)
        wide = ReproServer(session, port=0, max_batch=2,
                           max_delay_ms=200.0)
        with BackgroundServer(wide) as background:
            server = background.server
            _, up = json_request(server, "PUT", "/v1/operands",
                                 _operand_json(csr))
            before = server.stats.snapshot()["coalesced"]
            results = {}

            def fire(name, payload):
                results[name] = json_request(server, "POST", "/v1/spgemm",
                                             payload)

            threads = [
                threading.Thread(target=fire, args=(
                    "inline", {"a": _operand_json(csr), "verify": False,
                               "label": "inline"})),
                threading.Thread(target=fire, args=(
                    "ref", {"a": {"ref": up["ref"]}, "verify": False,
                            "label": "ref"})),
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.02)  # both land inside the 200 ms window
            for thread in threads:
                thread.join(timeout=30)
            after = server.stats.snapshot()["coalesced"]
        assert results["inline"][0] == 200
        assert results["ref"][0] == 200
        assert after == before + 1
        assert results["inline"][1]["cycles"] == results["ref"][1]["cycles"]
        assert results["inline"][1]["label"] == "inline"
        assert results["ref"][1]["label"] == "ref"


class TestServingStatsCounters:
    def test_bytes_and_registry_counters_in_stats(self, server):
        status, stats = json_request(server, "GET", "/stats")
        assert status == 200
        for key in ("bytes_in", "bytes_out", "registry_entries",
                    "registry_bytes", "registry_max_bytes",
                    "registry_hits", "registry_misses",
                    "registry_evictions", "registry_pinned"):
            assert key in stats, key
        assert stats["bytes_in"] > 0
        assert stats["bytes_out"] > 0
