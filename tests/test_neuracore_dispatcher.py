"""Unit tests for NeuraCore pipelines and the Dispatcher."""

import pytest

from repro.arch.isa import MMHInstruction, Opcode
from repro.compiler.program import MMHMacroOp
from repro.sim.dispatcher import Dispatcher
from repro.sim.engine import Simulator
from repro.sim.neuracore import NeuraCore
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


def make_mmh(sequence=0, k=0, n_a=2, n_b=2, reseed=False):
    instr = MMHInstruction(Opcode.MMH4, 0, 0, 0, 0, 0)
    return MMHMacroOp(opcode=Opcode.MMH4, k=k,
                      a_rows=tuple(range(n_a)),
                      a_values=tuple(1.0 for _ in range(n_a)),
                      b_cols=tuple(range(n_b)),
                      b_values=tuple(2.0 for _ in range(n_b)),
                      instruction=instr, reseed_after=reseed, sequence=sequence)


class _Harness:
    """Minimal environment standing in for memory, NoC and NeuraMems."""

    def __init__(self, read_latency=10.0, hacc_latency=3.0):
        self.sim = Simulator()
        self.params = SimulationParams()
        self.stats = StatsCollector()
        self.read_latency = read_latency
        self.hacc_latency = hacc_latency
        self.reads = []
        self.haccs = []
        self.retired = []

    def read(self, addr, nbytes, callback):
        self.reads.append((addr, nbytes))
        self.sim.schedule(self.read_latency, callback)

    def dispatch_hacc(self, core, op, index, arrival_callback):
        self.haccs.append((core.core_id, op.sequence, index))
        self.sim.schedule(self.hacc_latency, arrival_callback)

    def on_retire(self, core, op, latency):
        self.retired.append((op.sequence, latency))

    def make_core(self, core_id=0, pipelines=2, registers=4, multipliers=2):
        return NeuraCore(core_id=core_id, position=(0, 0), sim=self.sim,
                         params=self.params, stats=self.stats,
                         n_pipelines=pipelines, pipeline_registers=registers,
                         multipliers=multipliers, read_fn=self.read,
                         dispatch_hacc_fn=self.dispatch_hacc,
                         on_retire=self.on_retire)


class TestNeuraCore:
    def test_mmh_issues_four_memory_requests(self):
        env = _Harness()
        core = env.make_core()
        core.issue(make_mmh())
        env.sim.run()
        assert len(env.reads) == 4

    def test_mmh_dispatches_one_hacc_per_partial_product(self):
        env = _Harness()
        core = env.make_core()
        core.issue(make_mmh(n_a=3, n_b=4))
        env.sim.run()
        assert len(env.haccs) == 12
        assert core.haccs_dispatched == 12

    def test_retire_happens_after_all_haccs_arrive(self):
        env = _Harness(hacc_latency=50.0)
        core = env.make_core()
        core.issue(make_mmh())
        env.sim.run()
        assert len(env.retired) == 1
        assert env.retired[0][1] >= 50.0
        assert core.instructions_retired == 1
        assert core.in_flight == 0

    def test_latency_includes_memory_wait(self):
        fast = _Harness(read_latency=1.0)
        fast_core = fast.make_core()
        fast_core.issue(make_mmh())
        fast.sim.run()

        slow = _Harness(read_latency=200.0)
        slow_core = slow.make_core()
        slow_core.issue(make_mmh())
        slow.sim.run()
        assert slow.retired[0][1] > fast.retired[0][1] + 150
        assert slow_core.stall_cycles > fast_core.stall_cycles

    def test_capacity_is_pipelines_times_register_slots(self):
        env = _Harness()
        core = env.make_core(pipelines=2, registers=4)  # 2 slots per pipeline
        for i in range(4):
            assert core.can_accept()
            core.issue(make_mmh(sequence=i))
        assert not core.can_accept()
        with pytest.raises(RuntimeError):
            core.issue(make_mmh(sequence=99))
        env.sim.run()
        assert core.can_accept()

    def test_empty_mmh_retires_without_haccs(self):
        env = _Harness()
        core = env.make_core()
        core.issue(make_mmh(n_a=0, n_b=0))
        env.sim.run()
        assert env.haccs == []
        assert len(env.retired) == 1

    def test_cpi_histogram_populated(self):
        env = _Harness()
        core = env.make_core()
        core.issue(make_mmh())
        env.sim.run()
        assert env.stats.histograms["mmh_cpi"].total_observations == 1


class TestDispatcher:
    def _run(self, n_ops, n_cores=2, dispatch_width=2):
        env = _Harness()
        cores = [env.make_core(core_id=i) for i in range(n_cores)]
        params = env.params.scaled(dispatch_width=dispatch_width)
        dispatcher = Dispatcher(env.sim, params, cores, env.stats)
        for core in cores:
            core._on_retire = lambda c, op, lat, d=dispatcher: (
                env.on_retire(c, op, lat), d.notify_slot_free())
        dispatcher.load([make_mmh(sequence=i) for i in range(n_ops)])
        dispatcher.start()
        env.sim.run()
        return env, cores, dispatcher

    def test_all_instructions_are_issued_and_retired(self):
        env, cores, dispatcher = self._run(n_ops=12)
        assert dispatcher.instructions_issued == 12
        assert dispatcher.done
        assert sum(c.instructions_retired for c in cores) == 12
        assert len(env.retired) == 12

    def test_work_is_spread_across_cores(self):
        _env, cores, _dispatcher = self._run(n_ops=16, n_cores=4)
        per_core = [c.instructions_retired for c in cores]
        assert min(per_core) >= 2

    def test_backpressure_when_cores_full(self):
        # Many ops, one tiny core: the dispatcher must wait for retirements.
        env, cores, dispatcher = self._run(n_ops=20, n_cores=1, dispatch_width=8)
        assert dispatcher.done
        assert cores[0].instructions_retired == 20

    def test_empty_program(self):
        env = _Harness()
        core = env.make_core()
        dispatcher = Dispatcher(env.sim, env.params, [core], env.stats)
        dispatcher.load([])
        dispatcher.start()
        env.sim.run()
        assert dispatcher.done
        assert dispatcher.remaining == 0
