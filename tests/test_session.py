"""The unified Session API: specs, executors, sharding, persistent cache."""

import os
import pickle
import time
import types

import numpy as np
import pytest

from repro.core import (
    BatchSpec,
    GCNLayerSpec,
    NeuraChip,
    ProgramCache,
    RunResult,
    Session,
    SpGEMMSpec,
    SweepSpec,
    available_executors,
    get_executor,
    estimate_row_partial_products,
    matrix_fingerprint,
    plan_row_shards,
)
from repro.datasets import load_dataset
from repro.sparse.convert import csr_vstack


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=96, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def facebook():
    return load_dataset("facebook", max_nodes=96, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def analytic_session():
    session = Session("Tile-4", backend="analytic")
    yield session
    session.close()


class TestConstruction:
    def test_accepts_name_config_or_chip(self):
        chip = NeuraChip("Tile-4")
        assert Session(chip).chip is chip
        assert Session("Tile-4").chip.config.name == "Tile-4"
        assert Session(chip.config).chip.config is chip.config

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ValueError, match="registered backends"):
            Session("Tile-4", backend="quantum")

    def test_unknown_executor_fails_fast(self):
        with pytest.raises(ValueError, match="registered executors"):
            Session("Tile-4", executor="gpu")

    def test_unknown_impl_fails_fast(self):
        with pytest.raises(ValueError, match="impl"):
            Session("Tile-4", impl="fortran")

    def test_bad_cache_dir_rejected(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        with pytest.raises(ValueError, match="not a directory"):
            Session("Tile-4", cache_dir=blocker)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            Session("Tile-4", executor="thread", workers=0)

    def test_executor_registry_lists_builtins(self):
        assert {"serial", "thread", "process"} <= set(available_executors())
        with pytest.raises(ValueError, match="registered executors"):
            get_executor("warp")

    def test_context_manager_closes(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            assert session.run(SpGEMMSpec(a=wiki)).metrics["cycles"] > 0
        assert session.closed


class TestCloseLifecycle:
    def test_close_is_idempotent(self, wiki):
        session = Session("Tile-4", backend="analytic")
        session.run(SpGEMMSpec(a=wiki))
        session.close()
        session.close()  # second close must be a no-op, not an error
        assert session.closed

    def test_exit_then_close_is_safe(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            session.run(SpGEMMSpec(a=wiki))
        session.close()
        assert session.closed

    def test_pooled_executor_close_idempotent(self, wiki):
        session = Session("Tile-4", backend="analytic", executor="thread",
                          workers=2)
        session.run(SpGEMMSpec(a=wiki))
        session.close()
        session.close()

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_use_after_close_raises_clearly(self, wiki, executor):
        session = Session("Tile-4", backend="analytic", executor=executor)
        session.close()
        with pytest.raises(RuntimeError, match="session is closed"):
            session.run(SpGEMMSpec(a=wiki))
        with pytest.raises(RuntimeError, match="session is closed"):
            session.map([SpGEMMSpec(a=wiki)])
        with pytest.raises(RuntimeError, match="session is closed"):
            session.submit(SpGEMMSpec(a=wiki))


class TestRunSpGEMM:
    def test_matches_legacy_single_call(self, analytic_session, wiki):
        result = analytic_session.run(SpGEMMSpec(a=wiki, label="w"))
        chip = NeuraChip("Tile-4")
        with pytest.deprecated_call():
            legacy = chip.run_spgemm(wiki, backend="analytic")
        assert result.metrics["cycles"] == legacy.report.cycles
        assert result.metrics["partial_products"] == \
            legacy.program.total_partial_products
        assert result.metrics["output_nnz"] == legacy.output.nnz
        assert np.allclose(result.output.to_dense(), legacy.output.to_dense())

    def test_provenance_recorded(self, analytic_session, wiki):
        result = analytic_session.run(SpGEMMSpec(a=wiki))
        prov = result.provenance
        assert prov.backend == "analytic"
        assert prov.executor == "serial"
        assert prov.config == "Tile-4"
        assert prov.wall_time_s > 0

    def test_session_cache_hits_across_runs(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            first = session.run(SpGEMMSpec(a=wiki))
            second = session.run(SpGEMMSpec(a=wiki))
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_as_row_drops_none_fields(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            row = session.run(SpGEMMSpec(a=wiki)).as_row()
        assert None not in row.values()  # analytic: verified is None -> dropped
        assert "verified" not in row
        assert row["cache_hit"] is False
        assert "wall_time_s" in row

    def test_spec_validation(self, wiki):
        with pytest.raises(ValueError, match="operand 'a'"):
            SpGEMMSpec()
        with pytest.raises(ValueError, match="shards"):
            SpGEMMSpec(a=wiki, shards=0)

    def test_unsupported_spec_type_rejected(self, analytic_session):
        with pytest.raises(TypeError, match="unsupported spec"):
            analytic_session.run(types.SimpleNamespace())


class TestSharding:
    def test_planner_covers_all_rows(self, wiki):
        ranges = plan_row_shards(wiki, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == wiki.shape[0]
        for (_, prev_hi), (lo, hi) in zip(ranges, ranges[1:]):
            assert lo == prev_hi
            assert hi > lo

    def test_planner_clamps_to_row_count(self, wiki):
        ranges = plan_row_shards(wiki.row_slice(0, 3), 16)
        assert len(ranges) == 3

    def test_row_slices_reassemble(self, wiki):
        ranges = plan_row_shards(wiki, 5)
        stacked = csr_vstack([wiki.row_slice(lo, hi) for lo, hi in ranges])
        assert np.array_equal(stacked.to_dense(), wiki.to_dense())

    def test_row_partial_product_estimate_is_exact(self, wiki, facebook):
        from repro.sparse.symbolic import symbolic_spgemm

        weights = estimate_row_partial_products(wiki, facebook)
        assert int(weights.sum()) == \
            symbolic_spgemm(wiki, facebook).total_partial_products

    def test_pp_weighted_planner_balances_skew(self, wiki):
        """Weighting by partial products must not shard worse than the
        nnz-of-A proxy on a power-law graph, measured by the max per-shard
        partial-product load."""
        weights = estimate_row_partial_products(wiki, wiki)
        def worst(ranges):
            return max(int(weights[lo:hi].sum()) for lo, hi in ranges)

        by_nnz = plan_row_shards(wiki, 4)
        by_pp = plan_row_shards(wiki, 4, wiki)
        assert worst(by_pp) <= worst(by_nnz)
        # Both planners still cover every row exactly once.
        assert by_pp[0][0] == 0 and by_pp[-1][1] == wiki.shape[0]
        for (_, prev_hi), (lo, _) in zip(by_pp, by_pp[1:]):
            assert lo == prev_hi

    def test_pp_weighted_planner_result_unchanged(self, analytic_session,
                                                  wiki, facebook):
        whole = analytic_session.run(SpGEMMSpec(a=wiki, b=facebook,
                                                label="whole"))
        sharded = analytic_session.run(SpGEMMSpec(a=wiki, b=facebook,
                                                  shards=3, label="sharded"))
        assert sharded.metrics["partial_products"] == \
            whole.metrics["partial_products"]
        assert sharded.metrics["output_nnz"] == whole.metrics["output_nnz"]
        assert np.allclose(sharded.output.to_dense(), whole.output.to_dense())

    def test_sharded_matches_unsharded(self, analytic_session, wiki):
        whole = analytic_session.run(SpGEMMSpec(a=wiki, label="whole"))
        sharded = analytic_session.run(SpGEMMSpec(a=wiki, shards=4,
                                                  label="sharded"))
        assert sharded.provenance.shards == 4
        assert len(sharded.shard_results) == 4
        assert sharded.metrics["output_nnz"] == whole.metrics["output_nnz"]
        assert sharded.metrics["partial_products"] == \
            whole.metrics["partial_products"]
        assert np.allclose(sharded.output.to_dense(), whole.output.to_dense())

    def test_sharded_distinct_b_operand(self, analytic_session, wiki, facebook):
        whole = analytic_session.run(SpGEMMSpec(a=wiki, b=facebook))
        sharded = analytic_session.run(SpGEMMSpec(a=wiki, b=facebook,
                                                  shards=3))
        assert np.allclose(sharded.output.to_dense(), whole.output.to_dense())

    def test_sharded_on_cycle_backend_verifies(self, wiki):
        with Session("Tile-4", backend="cycle") as session:
            sharded = session.run(SpGEMMSpec(a=wiki, shards=2, verify=True))
        assert sharded.metrics["verified"] is True
        dense = wiki.to_dense()
        assert np.allclose(sharded.output.to_dense(), dense @ dense)


class TestMapAndSubmit:
    def test_map_preserves_order(self, analytic_session, wiki, facebook):
        specs = [SpGEMMSpec(a=wiki, label="a"),
                 SpGEMMSpec(a=facebook, label="b"),
                 SpGEMMSpec(a=wiki, label="c")]
        results = analytic_session.map(specs)
        assert [r.label for r in results] == ["a", "b", "c"]

    def test_submit_returns_future(self, analytic_session, wiki):
        future = analytic_session.submit(SpGEMMSpec(a=wiki, label="async"))
        result = future.result()
        assert isinstance(result, RunResult)
        assert result.label == "async"

    def test_thread_executor_matches_serial(self, wiki, facebook):
        specs = [SpGEMMSpec(a=m, label=str(i), verify=False)
                 for i, m in enumerate([wiki, facebook, wiki, facebook])]
        with Session("Tile-4", backend="analytic") as serial:
            expected = serial.map(specs)
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=2) as threaded:
            observed = threaded.map(specs)
        for want, got in zip(expected, observed):
            assert want.metrics == got.metrics

    def test_process_executor_matches_serial(self, wiki):
        specs = [SpGEMMSpec(a=wiki, label=str(i)) for i in range(2)]
        with Session("Tile-4", backend="analytic") as serial:
            expected = serial.map(specs)
        with Session("Tile-4", backend="analytic", executor="process",
                     workers=2) as procs:
            observed = procs.map(specs)
        for want, got in zip(expected, observed):
            assert want.metrics["cycles"] == got.metrics["cycles"]
            assert want.metrics["output_nnz"] == got.metrics["output_nnz"]
            assert np.allclose(want.output.to_dense(), got.output.to_dense())
        # Cross-process results carry count digests, not macro-op streams.
        assert observed[0].program.n_instructions == \
            expected[0].program.n_instructions

    def test_sharded_submit_on_saturated_pool_does_not_deadlock(self, wiki):
        # Regression: the sharded fan-out used to re-enter the session's own
        # pool and block on results, deadlocking once the pool was full.
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=1) as session:
            future = session.submit(SpGEMMSpec(a=wiki, shards=2))
            result = future.result(timeout=60)
        assert result.provenance.shards == 2

    def test_batch_of_sharded_specs_does_not_deadlock(self, wiki):
        specs = [SpGEMMSpec(a=wiki, shards=2, label=str(i)) for i in range(2)]
        with Session("Tile-4", backend="analytic", executor="thread",
                     workers=2) as session:
            result = session.run(BatchSpec(specs=specs))
        assert result.legacy.n_jobs == 2

    @pytest.mark.skipif(len(os.sched_getaffinity(0)) < 2,
                        reason="needs >= 2 CPU cores to beat serial")
    def test_process_executor_beats_serial_on_16_jobs(self):
        mats = [load_dataset("wiki-Vote", max_nodes=160, seed=s).adjacency_csr()
                for s in range(16)]
        specs = [SpGEMMSpec(a=m, label=str(i), verify=False)
                 for i, m in enumerate(mats)]
        with Session("Tile-4", backend="analytic") as serial:
            start = time.perf_counter()
            serial.map(specs)
            serial_wall = time.perf_counter() - start
        with Session("Tile-4", backend="analytic", executor="process",
                     workers=2) as procs:
            procs.map(specs[:1])  # warm the pool outside the timed region
            start = time.perf_counter()
            procs.map(specs)
            process_wall = time.perf_counter() - start
        assert process_wall < serial_wall


class TestGCNAndSweepSpecs:
    def test_gcn_layer_matches_legacy(self):
        dataset = load_dataset("cora", max_nodes=80, seed=6)
        with Session("Tile-4", backend="analytic") as session:
            result = session.run(GCNLayerSpec(dataset=dataset, feature_dim=8,
                                              hidden_dim=4))
        chip = NeuraChip("Tile-4")
        with pytest.deprecated_call():
            legacy = chip.run_gcn_layer(dataset, feature_dim=8, hidden_dim=4,
                                        backend="analytic")
        assert result.metrics["total_cycles"] == \
            pytest.approx(round(legacy.total_cycles, 1))
        assert np.allclose(result.output, legacy.output)
        assert result.legacy.metadata == {"feature_dim": 8, "hidden_dim": 4}

    def test_gcn_aggregation_program_cached(self):
        dataset = load_dataset("cora", max_nodes=64, seed=6)
        with Session("Tile-4", backend="analytic") as session:
            first = session.run(GCNLayerSpec(dataset=dataset, feature_dim=8,
                                             hidden_dim=4))
            second = session.run(GCNLayerSpec(dataset=dataset, feature_dim=8,
                                              hidden_dim=4))
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_sweep_matches_legacy(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            result = session.run(SweepSpec(a=wiki,
                                           configs=("Tile-4", "Tile-16")))
        table = result.legacy
        assert set(table) == {"Tile-4", "Tile-16"}
        for metric, value in table["Tile-4"].items():
            assert value == pytest.approx(1.0), metric

    def test_sweep_functional_backend_rejected(self, wiki):
        with Session("Tile-4", backend="functional") as session:
            with pytest.raises(ValueError, match="no timing report"):
                session.run(SweepSpec(a=wiki, configs=("Tile-4",)))

    def test_sweep_spec_validation(self, wiki):
        with pytest.raises(ValueError, match="on_missing_base"):
            SweepSpec(a=wiki, on_missing_base="ignore")


class TestBatchSpec:
    def test_batch_report_rows_and_summary(self, wiki):
        specs = [SpGEMMSpec(a=wiki, label=f"req-{i}", verify=False)
                 for i in range(3)]
        with Session("Tile-4", backend="analytic") as session:
            result = session.run(BatchSpec(specs=specs))
        report = result.legacy
        assert report.n_jobs == 3
        assert report.cache_hits == 2
        rows = report.as_rows()
        assert rows[0]["cache_hit"] is False
        assert rows[1]["cache_hit"] is True
        assert all("wall_time_s" in row for row in rows)
        summary = report.summary()
        assert summary["cache_hits"] == 2
        assert summary["executor"] == "serial"
        assert summary["wall_time_s"] > 0

    def test_batch_spec_rejects_foreign_members(self, wiki):
        with pytest.raises(TypeError, match="SpGEMMSpec"):
            BatchSpec(specs=[SweepSpec(a=wiki)])


class TestPersistentCache:
    def test_second_session_hits_disk(self, tmp_path, wiki):
        with Session("Tile-4", backend="analytic",
                     cache_dir=tmp_path) as cold:
            first = cold.run(SpGEMMSpec(a=wiki))
        with Session("Tile-4", backend="analytic",
                     cache_dir=tmp_path) as warm:
            second = warm.run(SpGEMMSpec(a=wiki))
            stats = warm.cache_stats()
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert stats["disk_hits"] == 1
        assert first.metrics == second.metrics

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, wiki):
        with Session("Tile-4", backend="analytic",
                     cache_dir=tmp_path) as session:
            session.run(SpGEMMSpec(a=wiki))
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"corrupt")
        with Session("Tile-4", backend="analytic",
                     cache_dir=tmp_path) as session:
            result = session.run(SpGEMMSpec(a=wiki))
        assert result.cache_hit is False

    def test_disk_entries_survive_pickle_round_trip(self, tmp_path, wiki):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        chip = NeuraChip("Tile-4")
        key = cache.key(wiki, None, 4)
        program = chip.compile(wiki, tile_size=4)
        cache.put(key, program)
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        loaded = fresh.get(key)
        assert loaded is not None
        assert loaded.n_instructions == program.n_instructions
        assert pickle.dumps(loaded.digest())  # digests stay picklable


class TestFingerprint:
    def test_dtype_changes_fingerprint(self):
        base = types.SimpleNamespace(
            indptr=np.array([0, 1], dtype=np.int64),
            indices=np.array([0], dtype=np.int64),
            data=np.zeros(1, dtype=np.float64),
            shape=(1, 1))
        twin = types.SimpleNamespace(
            indptr=base.indptr, indices=base.indices,
            data=np.zeros(1, dtype=np.int64),  # same bytes, other dtype
            shape=(1, 1))
        assert base.data.tobytes() == twin.data.tobytes()
        assert matrix_fingerprint(base) != matrix_fingerprint(twin)

    def test_schema_version_in_key(self, wiki):
        from repro.core.runner import CACHE_SCHEMA_VERSION

        cache = ProgramCache()
        key = cache.key(wiki, None, 4)
        assert key[0] == CACHE_SCHEMA_VERSION
        assert cache.key(wiki, None, 4, kind="gcn") != key
