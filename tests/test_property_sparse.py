"""Property-based tests (hypothesis) for the sparse substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse.bloat import bloat_percent, partial_product_count
from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_csr,
    csr_to_csc,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.spgemm import run_all_dataflows, spgemm_row_wise
from repro.sparse.symbolic import symbolic_spgemm


@st.composite
def sparse_matrices(draw, max_dim=12, square=False):
    """Random small sparse matrices as (COOMatrix, dense) pairs."""
    n_rows = draw(st.integers(min_value=1, max_value=max_dim))
    n_cols = n_rows if square else draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=n_rows * n_cols))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    values = draw(st.lists(st.floats(min_value=-8.0, max_value=8.0,
                                     allow_nan=False, allow_infinity=False),
                           min_size=nnz, max_size=nnz))
    coo = COOMatrix(np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                    np.array(values), (n_rows, n_cols))
    return coo


@st.composite
def spgemm_pairs(draw, max_dim=10):
    """Compatible (A, B) CSR pairs for SpGEMM properties."""
    n_rows = draw(st.integers(1, max_dim))
    inner = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    a = draw(sparse_matrices(max_dim=max_dim))
    b = draw(sparse_matrices(max_dim=max_dim))
    a = COOMatrix(a.rows % n_rows, a.cols % inner, a.data, (n_rows, inner))
    b = COOMatrix(b.rows % inner, b.cols % n_cols, b.data, (inner, n_cols))
    return coo_to_csr(a), coo_to_csr(b)


class TestFormatRoundTrips:
    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csr_roundtrip_preserves_dense(self, coo):
        dense = coo.to_dense()
        assert np.allclose(coo_to_csr(coo).to_dense(), dense)

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csc_roundtrip_preserves_dense(self, coo):
        dense = coo.to_dense()
        assert np.allclose(coo_to_csc(coo).to_dense(), dense)

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csr_csc_cross_conversion(self, coo):
        csr = coo_to_csr(coo)
        assert np.allclose(csr_to_csc(csr).to_dense(), csr.to_dense())
        csc = coo_to_csc(coo)
        assert np.allclose(csc_to_csr(csc).to_dense(), csc.to_dense())

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, coo):
        assert np.allclose(coo.transpose().transpose().to_dense(), coo.to_dense())

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_nnz_never_exceeds_cells_after_merge(self, coo):
        merged = coo.sum_duplicates()
        assert merged.nnz <= coo.shape[0] * coo.shape[1]


class TestSpGEMMProperties:
    @given(spgemm_pairs())
    @settings(max_examples=40, deadline=None)
    def test_every_dataflow_matches_numpy(self, pair):
        a, b = pair
        reference = a.to_dense() @ b.to_dense()
        for name, result in run_all_dataflows(a, b).items():
            assert np.allclose(result.matrix.to_dense(), reference), name

    @given(spgemm_pairs())
    @settings(max_examples=40, deadline=None)
    def test_symbolic_counters_match_numeric_contributions(self, pair):
        a, b = pair
        symbolic = symbolic_spgemm(a, b)
        # Recount contributions directly from the operand structures.
        recount: dict[tuple[int, int], int] = {}
        for i in range(a.shape[0]):
            a_cols, _ = a.row(i)
            for k in a_cols.tolist():
                b_cols, _ = b.row(k)
                for j in b_cols.tolist():
                    recount[(i, j)] = recount.get((i, j), 0) + 1
        assert recount == symbolic.entries

    @given(spgemm_pairs())
    @settings(max_examples=40, deadline=None)
    def test_partial_product_count_matches_dataflow(self, pair):
        a, b = pair
        assert partial_product_count(a, b) == spgemm_row_wise(a, b).partial_products

    @given(spgemm_pairs())
    @settings(max_examples=40, deadline=None)
    def test_bloat_is_non_negative(self, pair):
        a, b = pair
        assert bloat_percent(a, b) >= 0.0
