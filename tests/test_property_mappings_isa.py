"""Property-based tests for mapping schemes and the MMH/HACC ISA."""

from hypothesis import given, settings, strategies as st

from repro.arch.isa import (
    HACCInstruction,
    MMHInstruction,
    Opcode,
    decode_from_bytes,
    decode_hacc,
    decode_mmh,
    encode_hacc,
    encode_mmh,
    encode_to_bytes,
)
from repro.hashing.mappings import make_mapping

_SCHEME_NAMES = st.sampled_from(["ring", "modular", "random", "drhm"])
_TAGS = st.integers(min_value=0, max_value=2**32 - 1)
_RESOURCES = st.integers(min_value=1, max_value=257)


class TestMappingProperties:
    @given(_SCHEME_NAMES, _RESOURCES, st.lists(_TAGS, min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_mapping_always_in_range(self, name, n_resources, tags):
        scheme = make_mapping(name, n_resources)
        for tag in tags:
            assert 0 <= scheme.map(tag) < n_resources

    @given(_SCHEME_NAMES, _RESOURCES, _TAGS)
    @settings(max_examples=80, deadline=None)
    def test_mapping_is_deterministic_between_reseeds(self, name, n_resources, tag):
        scheme = make_mapping(name, n_resources)
        assert scheme.map(tag) == scheme.map(tag)

    @given(_RESOURCES, _TAGS, st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=80, deadline=None)
    def test_drhm_group_mapping_survives_reseeds(self, n_resources, tag, group):
        scheme = make_mapping("drhm", n_resources)
        first = scheme.map(tag, group=group)
        scheme.reseed()
        assert scheme.map(tag, group=group) == first


_MMH_OPCODES = st.sampled_from([Opcode.MMH1, Opcode.MMH2, Opcode.MMH4, Opcode.MMH8])
_REG22 = st.integers(min_value=0, max_value=(1 << 22) - 1)
_REG32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
_REG16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestISAProperties:
    @given(_MMH_OPCODES, _REG32, _REG22, _REG22, _REG22, _REG22)
    @settings(max_examples=120, deadline=None)
    def test_mmh_encode_decode_roundtrip(self, opcode, base, a_addr, b_col, b_data,
                                         counter_addr):
        instr = MMHInstruction(opcode, base, a_addr, b_col, b_data, counter_addr)
        word = encode_mmh(instr)
        assert 0 <= word < (1 << 128)
        assert decode_mmh(word) == instr

    @given(_REG32, st.floats(allow_nan=False, allow_infinity=False, width=32),
           _REG32, _REG16)
    @settings(max_examples=120, deadline=None)
    def test_hacc_encode_decode_roundtrip(self, tag, data, addr, counter):
        instr = HACCInstruction(tag=tag, data=data, writeback_addr=addr,
                                counter=counter)
        word = encode_hacc(instr)
        decoded = decode_hacc(word)
        assert decoded.tag == tag
        assert decoded.writeback_addr == addr
        assert decoded.counter == counter
        # Data survives the float32 round trip exactly (it was float32 already).
        assert decoded.data == instr.data or abs(decoded.data - instr.data) <= \
            abs(instr.data) * 1e-6

    @given(_MMH_OPCODES, _REG32, _REG22, _REG22, _REG22, _REG22)
    @settings(max_examples=60, deadline=None)
    def test_binary_serialisation_roundtrip(self, opcode, base, a_addr, b_col,
                                            b_data, counter_addr):
        instr = MMHInstruction(opcode, base, a_addr, b_col, b_data, counter_addr)
        word = encode_mmh(instr)
        assert decode_from_bytes(encode_to_bytes(word)) == word
