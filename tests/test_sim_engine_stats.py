"""Unit tests for the simulation kernel and statistics collection."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, LevelTracker, StatsCollector


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, "late")
        sim.schedule(1, order.append, "early")
        sim.schedule(3, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        sim.schedule(2, order.append, "first")
        sim.schedule(2, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(7.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(7.5)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(2, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1, lambda: None)

    def test_max_events_cap(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i, lambda: None)
        sim.run(max_events=4)
        assert sim.pending_events == 6

    def test_until_horizon(self):
        sim = Simulator()
        hits = []
        sim.schedule(1, hits.append, 1)
        sim.schedule(10, hits.append, 10)
        sim.run(until=5)
        assert hits == [1]
        sim.run()
        assert hits == [1, 10]

    def test_reset(self):
        sim = Simulator()
        sim.schedule(3, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0


class TestHistogram:
    def test_binning(self):
        hist = Histogram(bin_width=25, n_bins=4)
        for value in (0, 24, 26, 30, 99, 500):
            hist.add(value)
        assert hist.counts.tolist() == [2, 2, 0, 2]

    def test_mean(self):
        hist = Histogram(bin_width=10, n_bins=3)
        hist.add(5)
        hist.add(15)
        assert hist.mean == pytest.approx(10.0)

    def test_empty_histogram(self):
        hist = Histogram(bin_width=10, n_bins=3)
        assert hist.mean == 0.0
        assert hist.percentages().sum() == 0.0

    def test_labels_include_overflow_marker(self):
        hist = Histogram(bin_width=50, n_bins=3)
        labels = hist.labels()
        assert labels[0] == "0-50"
        assert labels[-1].endswith("+")

    def test_percentages_sum_to_hundred(self):
        hist = Histogram(bin_width=25, n_bins=20)
        for value in range(0, 1000, 7):
            hist.add(value)
        assert hist.percentages().sum() == pytest.approx(100.0)

    def test_as_dict(self):
        hist = Histogram(bin_width=25, n_bins=2)
        hist.add(10)
        assert hist.as_dict()["0-25"] == pytest.approx(100.0)


class TestLevelTracker:
    def test_average_of_constant_level(self):
        tracker = LevelTracker()
        tracker.change(0.0, 4)
        assert tracker.average(10.0) == pytest.approx(4.0)

    def test_average_of_step_profile(self):
        tracker = LevelTracker()
        tracker.change(0.0, 2)
        tracker.change(5.0, 2)   # level 4 for the second half
        assert tracker.average(10.0) == pytest.approx(3.0)

    def test_peak(self):
        tracker = LevelTracker()
        tracker.change(0.0, 3)
        tracker.change(1.0, 5)
        tracker.change(2.0, -6)
        assert tracker.peak == 8
        assert tracker.current == 2

    def test_zero_duration(self):
        tracker = LevelTracker()
        assert tracker.average(0.0) == 0.0


class TestStatsCollector:
    def test_counters_and_observations(self):
        stats = StatsCollector()
        stats.incr("hits")
        stats.incr("hits", 2)
        stats.observe("latency", 10)
        stats.observe("latency", 20)
        assert stats.counters["hits"] == 3
        assert stats.mean("latency") == pytest.approx(15.0)
        assert stats.percentile("latency", 100) == pytest.approx(20.0)

    def test_missing_series_default_to_zero(self):
        stats = StatsCollector()
        assert stats.mean("nothing") == 0.0
        assert stats.percentile("nothing", 50) == 0.0

    def test_histogram_is_cached_by_name(self):
        stats = StatsCollector()
        first = stats.histogram("cpi", 25, 20)
        second = stats.histogram("cpi", 25, 20)
        assert first is second

    def test_summary_contains_levels_and_means(self):
        stats = StatsCollector()
        stats.incr("count", 5)
        stats.observe("lat", 2.0)
        stats.level("inflight").change(0.0, 3)
        summary = stats.summary(end_time=10.0)
        assert summary["count"] == 5
        assert summary["lat.mean"] == pytest.approx(2.0)
        assert summary["inflight.avg"] == pytest.approx(3.0)
        assert summary["inflight.peak"] == 3
