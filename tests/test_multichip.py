"""Multi-chip scale-out backend: per-chip contexts, reduce, equivalence."""

import numpy as np
import pytest

from repro.backends import ChipTopology, get_backend, predict_scaleout
from repro.backends.multichip import MultiChipExecutionResult
from repro.core import NeuraChip, Session, SpGEMMSpec
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=80, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def facebook():
    return load_dataset("facebook", max_nodes=80, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def single_chip(wiki):
    """The single-chip unsharded analytic reference result."""
    with Session("Tile-4", backend="analytic") as session:
        return session.run(SpGEMMSpec(a=wiki, verify=False))


def assert_byte_identical(result, reference):
    """CSR equality down to the raw arrays, not just allclose."""
    assert np.array_equal(result.output.indptr, reference.output.indptr)
    assert np.array_equal(result.output.indices, reference.output.indices)
    assert np.array_equal(result.output.data, reference.output.data)


class TestCrossBackendEquivalence:
    """multichip (1..4 chips x serial/thread/process) == single chip."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("chips", [1, 2, 3, 4])
    def test_equivalent_to_single_chip(self, wiki, single_chip, chips,
                                       executor):
        workers = 2 if executor != "serial" else None
        with Session("Tile-4", backend="multichip", chips=chips,
                     executor=executor, workers=workers) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        assert_byte_identical(result, single_chip)
        assert result.metrics["partial_products"] == \
            single_chip.metrics["partial_products"]
        assert result.metrics["output_nnz"] == \
            single_chip.metrics["output_nnz"]
        assert result.provenance.chips == chips
        assert result.provenance.executor == executor

    def test_distinct_b_operand(self, wiki, facebook):
        with Session("Tile-4", backend="analytic") as session:
            whole = session.run(SpGEMMSpec(a=wiki, b=facebook, verify=False))
        with Session("Tile-4", backend="multichip", chips=3) as session:
            multi = session.run(SpGEMMSpec(a=wiki, b=facebook, verify=False))
        assert_byte_identical(multi, whole)

    def test_cycle_chip_backend_verifies(self, wiki):
        topology = ChipTopology(n_chips=2, chip_backend="cycle")
        with Session("Tile-4", backend="multichip",
                     topology=topology) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=True))
        assert result.metrics["verified"] is True
        dense = wiki.to_dense()
        assert np.allclose(result.output.to_dense(), dense @ dense)

    def test_functional_chip_backend_has_no_report(self, wiki, single_chip):
        topology = ChipTopology(n_chips=2, chip_backend="functional")
        with Session("Tile-4", backend="multichip",
                     topology=topology) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        assert result.report is None
        assert result.metrics["output_nnz"] == \
            single_chip.metrics["output_nnz"]
        assert np.allclose(result.output.to_dense(),
                           single_chip.output.to_dense())


class TestAggregateMetrics:
    def test_cycles_are_max_over_chips_plus_host_terms(self, wiki):
        with Session("Tile-4", backend="multichip", chips=4) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        counters = result.report.counters
        chip_cycles = [counters[f"multichip.chip{i}.cycles"]
                       for i in range(4)]
        reduce_cycles = counters["multichip.reduce_cycles"]
        broadcast_cycles = counters["multichip.broadcast_cycles"]
        assert reduce_cycles > 0
        assert broadcast_cycles > 0  # cold run: B was broadcast once
        # The counters are rounded to one decimal for readability.
        assert result.report.cycles == \
            pytest.approx(max(chip_cycles) + reduce_cycles + broadcast_cycles,
                          abs=0.12)

    def test_shard_skew_and_per_chip_counters(self, wiki):
        with Session("Tile-4", backend="multichip", chips=3) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        counters = result.report.counters
        assert counters["multichip.n_chips"] == 3
        assert counters["multichip.shard_skew"] >= 1.0
        assert 0.0 < counters["multichip.efficiency"] <= 1.0
        rows = sum(counters[f"multichip.chip{i}.rows"] for i in range(3))
        assert rows == wiki.shape[0]
        pp = sum(counters[f"multichip.chip{i}.partial_products"]
                 for i in range(3))
        assert pp == result.metrics["partial_products"]

    def test_power_is_summed_across_chips(self, wiki, single_chip):
        with Session("Tile-4", backend="multichip", chips=4) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        # Four active chips burn more than one (each chip's activity is
        # lower, but static power alone quadruples).
        assert result.power_w > single_chip.power_w

    def test_as_row_reports_chips(self, wiki):
        with Session("Tile-4", backend="multichip", chips=2) as session:
            row = session.run(SpGEMMSpec(a=wiki, verify=False)).as_row()
        assert row["chips"] == 2
        assert row["backend"] == "multichip"

    def test_single_chip_topology_has_no_host_terms(self, wiki):
        with Session("Tile-4", backend="multichip", chips=1) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        assert result.report.counters["multichip.reduce_cycles"] == 0.0
        assert result.report.counters["multichip.broadcast_cycles"] == 0.0

    def test_broadcast_charges_b_nnz_bytes(self, wiki):
        topology = ChipTopology(n_chips=2, reduce_bytes_per_cycle=32.0)
        with Session("Tile-4", backend="multichip",
                     topology=topology) as session:
            result = session.run(SpGEMMSpec(a=wiki, verify=False))
        counters = result.report.counters
        assert counters["multichip.broadcast_bytes"] == wiki.nnz
        assert counters["multichip.broadcast_cycles"] == \
            pytest.approx(wiki.nnz / 32.0, abs=0.06)


class TestProgramCaching:
    def test_per_shard_programs_cache(self, wiki):
        with Session("Tile-4", backend="multichip", chips=3) as session:
            first = session.run(SpGEMMSpec(a=wiki, verify=False))
            second = session.run(SpGEMMSpec(a=wiki, verify=False))
        assert first.cache_hit is False
        assert second.cache_hit is True
        for key in ("mmh", "partial_products", "output_nnz", "chips"):
            assert second.metrics[key] == first.metrics[key]

    def test_broadcast_amortizes_across_cached_runs(self, wiki):
        # The one-time B broadcast is charged on the cold run only: once
        # every shard program hits the cache, B is already on the fleet.
        with Session("Tile-4", backend="multichip", chips=3) as session:
            cold = session.run(SpGEMMSpec(a=wiki, verify=False))
            warm = session.run(SpGEMMSpec(a=wiki, verify=False))
        cold_counters = cold.report.counters
        warm_counters = warm.report.counters
        assert cold_counters["multichip.broadcast_cycles"] > 0
        assert warm_counters["multichip.broadcast_cycles"] == 0.0
        assert warm.metrics["cycles"] == pytest.approx(
            cold.metrics["cycles"]
            - cold_counters["multichip.broadcast_cycles"], abs=0.12)

    def test_disk_cache_shared_across_sessions(self, tmp_path, wiki):
        with Session("Tile-4", backend="multichip", chips=2,
                     cache_dir=tmp_path) as cold:
            cold.run(SpGEMMSpec(a=wiki, verify=False))
        with Session("Tile-4", backend="multichip", chips=2,
                     cache_dir=tmp_path) as warm:
            result = warm.run(SpGEMMSpec(a=wiki, verify=False))
        assert result.cache_hit is True


class TestValidation:
    def test_topology_validation(self):
        with pytest.raises(ValueError, match="n_chips"):
            ChipTopology(n_chips=0)
        with pytest.raises(ValueError, match="nest"):
            ChipTopology(chip_backend="multichip")
        with pytest.raises(ValueError, match="reduce_bytes_per_cycle"):
            ChipTopology(reduce_bytes_per_cycle=0.0)

    def test_chips_require_multichip_backend(self):
        with pytest.raises(ValueError, match="multichip"):
            Session("Tile-4", backend="analytic", chips=4)

    def test_chips_and_topology_must_agree(self):
        with pytest.raises(ValueError, match="contradicts"):
            Session("Tile-4", backend="multichip", chips=4,
                    topology=ChipTopology(n_chips=2))

    def test_unknown_chip_backend_fails_fast(self):
        with pytest.raises(ValueError, match="registered backends"):
            Session("Tile-4", backend="multichip",
                    topology=ChipTopology(chip_backend="quantum"))

    def test_shards_and_chips_are_mutually_exclusive(self, wiki):
        with Session("Tile-4", backend="multichip", chips=2) as session:
            with pytest.raises(ValueError, match="chips=N"):
                session.run(SpGEMMSpec(a=wiki, shards=2))

    def test_execute_requires_operands(self, wiki):
        chip = NeuraChip("Tile-4")
        program = chip.compile(wiki)
        backend = get_backend("multichip")
        with pytest.raises(ValueError, match="a_csr"):
            backend.execute(program, chip._context("numpy"))

    def test_degenerate_chip_count_clamps(self, wiki):
        # More chips than rows of work: the contiguous plan (and the
        # counters) shrink instead of emitting empty shards.
        tiny = wiki.row_slice(0, 3)
        with Session("Tile-4", backend="multichip", chips=16,
                     partition="contiguous") as session:
            result = session.run(SpGEMMSpec(a=tiny, b=wiki, verify=False))
        assert result.metrics["chips"] <= 3

    def test_auto_splits_few_heavy_rows_across_fleet(self, wiki):
        # Under auto, the makespan probe now keeps the fleet busy on this
        # input: splitting the heavy rows into column-range fragments
        # beats three whole-row shards even after the per-unit overhead
        # charge, so the chip count does NOT clamp to the row count.
        tiny = wiki.row_slice(0, 3)
        with Session("Tile-4", backend="multichip", chips=16) as session:
            result = session.run(SpGEMMSpec(a=tiny, b=wiki, verify=False))
        with Session("Tile-4", backend="analytic") as single:
            reference = single.run(SpGEMMSpec(a=tiny, b=wiki, verify=False))
        assert result.metrics["partition"] == "degree"
        assert result.metrics["chips"] > 3
        assert result.metrics["output_nnz"] == reference.metrics["output_nnz"]


class TestFacadeAndSubmit:
    def test_run_program_route(self, wiki, single_chip):
        chip = NeuraChip("Tile-4")
        program = chip.compile(wiki)
        result = chip.run_program(program, a=wiki, backend="multichip",
                                  verify=False)
        assert result.backend == "multichip"
        assert np.array_equal(result.output.to_dense(),
                              single_chip.output.to_dense())

    def test_submit_on_process_executor(self, wiki, single_chip):
        with Session("Tile-4", backend="multichip", chips=2,
                     executor="process", workers=2) as session:
            result = session.submit(SpGEMMSpec(a=wiki,
                                               verify=False)).result()
        assert result.provenance.chips == 2
        assert result.metrics["output_nnz"] == \
            single_chip.metrics["output_nnz"]

    def test_gcn_layer_through_multichip(self):
        dataset = load_dataset("cora", max_nodes=64, seed=6)
        from repro.core import GCNLayerSpec

        with Session("Tile-4", backend="analytic") as session:
            reference = session.run(GCNLayerSpec(dataset=dataset,
                                                 feature_dim=8, hidden_dim=4,
                                                 verify=False))
        with Session("Tile-4", backend="multichip", chips=2) as session:
            result = session.run(GCNLayerSpec(dataset=dataset, feature_dim=8,
                                              hidden_dim=4, verify=False))
        assert result.output.shape == reference.output.shape
        assert np.allclose(result.output, reference.output)
        assert result.provenance.chips == 2

    def test_sweep_respects_topology(self, wiki):
        # Regression: the sweep worker used to drop the topology and run
        # every configuration on a default single-chip fleet.
        from repro.core import SweepSpec

        with Session("Tile-4", backend="analytic") as session:
            single = session.run(SweepSpec(a=wiki, configs=("Tile-4",),
                                           normalize_to=None))
        with Session("Tile-4", backend="multichip", chips=2) as session:
            multi = session.run(SweepSpec(a=wiki, configs=("Tile-4",),
                                          normalize_to=None))
        # A one-chip fleet reports exactly the analytic cycles (no reduce
        # term), so equality here would mean the topology was dropped.
        assert multi.legacy["Tile-4"]["cycles"] != \
            single.legacy["Tile-4"]["cycles"]


class TestPredictScaleout:
    def test_matches_shard_histogram(self, wiki):
        prediction = predict_scaleout(wiki, 4)
        loads = prediction["shard_partial_products"]
        assert len(loads) == prediction["n_chips"] == 4
        assert prediction["predicted_speedup"] == \
            pytest.approx(sum(loads) / max(loads), rel=1e-3)
        assert 0.0 < prediction["efficiency"] <= 1.0
        assert prediction["skew"] >= 1.0

    def test_clamps_degenerate_requests(self, wiki):
        tiny = wiki.row_slice(0, 2)
        prediction = predict_scaleout(tiny, 16, wiki,
                                      partition="contiguous")
        assert prediction["n_chips"] <= 2

    def test_degree_splitting_beats_the_contiguous_clamp(self, wiki):
        # Two rows on 16 chips: the contiguous planner clamps to 2 shards,
        # the degree planner merge-path-splits the rows into column-range
        # fragments and keeps more of the fleet busy.
        tiny = wiki.row_slice(0, 2)
        contiguous = predict_scaleout(tiny, 16, wiki,
                                      partition="contiguous")
        degree = predict_scaleout(tiny, 16, wiki, partition="degree")
        assert degree["n_chips"] > contiguous["n_chips"]
        assert degree["split_rows"] >= 1
        assert degree["strategy"] == "degree"

    def test_execution_result_type(self, wiki):
        chip = NeuraChip("Tile-4")
        backend = get_backend("multichip")
        backend.topology = ChipTopology(n_chips=2, partition="contiguous")
        execution = backend.execute_operands(wiki, None,
                                             chip._context("numpy"),
                                             tile_size=4, verify=False)
        assert isinstance(execution, MultiChipExecutionResult)
        assert execution.n_chips == 2
        assert [run.chip for run in execution.chip_runs] == [0, 1]
        assert execution.plan.strategy == "contiguous"
        # Contiguous assignments expose their historical (lo, hi) ranges.
        assert execution.chip_runs[0].row_range[1] == \
            execution.chip_runs[1].row_range[0]
