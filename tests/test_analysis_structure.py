"""Tests for the structural checker (pass 2) and its trust-boundary
wiring: strict CSRMatrix validation, wire decode, registry put, and
shard-stitch outputs."""

import numpy as np
import pytest

from repro.analysis.findings import StructureError
from repro.analysis.structure import check_csr, require_valid_csr
from repro.datasets.suite import load_dataset
from repro.serve.wire import WireFormatError, decode_csr, encode_csr
from repro.sparse.csr import CSRMatrix


class FakeCSR:
    """Duck-typed CSR carrier that skips CSRMatrix's own validation, so
    the checker can be pointed at deliberately broken structure."""

    def __init__(self, indptr, indices, data, shape):
        self.indptr = np.asarray(indptr)
        self.indices = np.asarray(indices)
        self.data = np.asarray(data)
        self.shape = shape


def valid():
    return FakeCSR(np.array([0, 2, 3], dtype=np.int64),
                   np.array([0, 2, 1], dtype=np.int64),
                   np.array([1.0, 2.0, 3.0]), (2, 3))


def checks(matrix):
    return {finding.check for finding in check_csr(matrix, "test")}


class TestCheckCsr:
    def test_canonical_matrix_is_clean(self):
        assert check_csr(valid(), "test") == []

    def test_real_dataset_matrices_are_clean(self):
        dataset = load_dataset("facebook", max_nodes=64, seed=0)
        assert check_csr(dataset.adjacency_csr(), "adjacency") == []
        assert check_csr(dataset.features(seed=3), "features") == []

    def test_indptr_length(self):
        bad = valid()
        bad.indptr = bad.indptr[:-1]
        assert checks(bad) == {"shape-agreement"}

    def test_indptr_span(self):
        bad = valid()
        bad.indptr = np.array([0, 2, 5], dtype=np.int64)
        assert checks(bad) == {"indptr-monotone"}

    def test_indptr_decreasing(self):
        bad = FakeCSR(np.array([0, 2, 1, 3], dtype=np.int64),
                      np.array([0, 2, 1], dtype=np.int64),
                      np.array([1.0, 2.0, 3.0]), (3, 3))
        assert checks(bad) == {"indptr-monotone"}

    def test_column_out_of_range(self):
        bad = valid()
        bad.indices = np.array([0, 3, 1], dtype=np.int64)
        assert checks(bad) == {"column-bounds"}

    def test_unsorted_within_row(self):
        bad = valid()
        bad.indices = np.array([2, 0, 1], dtype=np.int64)
        assert checks(bad) == {"sorted-indices"}

    def test_duplicate_within_row(self):
        bad = valid()
        bad.indices = np.array([0, 0, 1], dtype=np.int64)
        assert checks(bad) == {"duplicate-indices"}

    def test_row_boundary_descent_is_legal(self):
        # indices 2 -> 1 across the row boundary is fine.
        assert check_csr(valid(), "test") == []

    def test_dtype_mismatch(self):
        bad = valid()
        bad.indices = bad.indices.astype(np.int32)
        assert "dtype-agreement" in checks(bad)

    def test_require_valid_csr_raises(self):
        bad = valid()
        bad.indices = np.array([0, 0, 1], dtype=np.int64)
        with pytest.raises(StructureError) as excinfo:
            require_valid_csr(bad, context="unit")
        assert excinfo.value.findings[0].check == "duplicate-indices"
        assert excinfo.value.findings[0].location == "unit"


class TestStrictCSRMatrixValidate:
    def test_unsorted_rejected_at_construction(self):
        with pytest.raises(ValueError, match="sorted"):
            CSRMatrix(np.array([0, 2]), np.array([2, 0]),
                      np.array([1.0, 2.0]), (1, 3))

    def test_duplicates_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duplicate"):
            CSRMatrix(np.array([0, 2]), np.array([1, 1]),
                      np.array([1.0, 2.0]), (1, 3))

    def test_sorted_rows_accepted(self):
        matrix = CSRMatrix(np.array([0, 2, 3]), np.array([0, 2, 1]),
                           np.array([1.0, 2.0, 3.0]), (2, 3))
        assert matrix.nnz == 3


class TestWireTrustBoundary:
    def test_roundtrip_clean(self):
        dataset = load_dataset("facebook", max_nodes=48, seed=2)
        features = dataset.features(seed=5)
        decoded, meta = decode_csr(encode_csr(features))
        assert meta is None
        assert check_csr(decoded, "wire") == []

    def test_tampered_frame_rejected(self):
        matrix = CSRMatrix(np.array([0, 2]), np.array([0, 2]),
                           np.array([1.0, 2.0]), (1, 3))
        frame = bytearray(encode_csr(matrix))
        # Overwrite the indices segment with a duplicate pair: the frame
        # still parses (lengths agree) but the payload is non-canonical.
        indices_offset = 36 + 2 * 8
        frame[indices_offset:indices_offset + 16] = \
            np.array([1, 1], dtype="<i8").tobytes()
        with pytest.raises(WireFormatError, match="not a valid CSR"):
            decode_csr(bytes(frame))


class TestRegistryTrustBoundary:
    def test_put_requires_canonical_csr(self):
        from repro.serve.registry import OperandRegistry

        registry = OperandRegistry(max_bytes=1 << 20)
        dataset = load_dataset("facebook", max_nodes=48, seed=2)
        entry, created = registry.put(dataset.adjacency_csr())
        assert created
        bad = FakeCSR(np.array([0, 2], dtype=np.int64),
                      np.array([1, 1], dtype=np.int64),
                      np.array([1.0, 2.0]), (1, 3))
        with pytest.raises(StructureError):
            registry.put(bad)


class TestStitchTrustBoundary:
    def test_multichip_output_is_canonical(self):
        from repro.core.session import Session
        from repro.core.specs import SpGEMMSpec

        dataset = load_dataset("wiki-Vote", max_nodes=96, seed=0)
        with Session("Tile-4", backend="multichip", chips=2) as session:
            result = session.run(SpGEMMSpec(a=dataset.adjacency_csr()))
        assert check_csr(result.output, "stitch") == []
