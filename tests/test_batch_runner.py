"""Batch runner: WorkloadQueue, program caching, and aggregate reporting."""

import numpy as np
import pytest

from repro.core.api import NeuraChip
from repro.core.runner import (
    ProgramCache,
    WorkloadJob,
    WorkloadQueue,
    matrix_fingerprint,
)
from repro.datasets import load_dataset
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def chip():
    return NeuraChip("Tile-4")


@pytest.fixture(scope="module")
def graphs():
    return {name: load_dataset(name, max_nodes=80, seed=5).adjacency_csr()
            for name in ("wiki-Vote", "facebook")}


class TestFingerprint:
    def test_stable_and_content_sensitive(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((10, 10)) < 0.3) * rng.random((10, 10))
        a = CSRMatrix.from_dense(dense)
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())
        dense[0, 0] += 1.0
        assert matrix_fingerprint(CSRMatrix.from_dense(dense)) \
            != matrix_fingerprint(a)


class TestProgramCache:
    def test_insertion_order_eviction_without_touches(self):
        cache = ProgramCache(capacity=2)
        for i in range(3):
            cache.put(("key", i), f"program-{i}")
        assert cache.get(("key", 0)) is None
        assert cache.get(("key", 2)) == "program-2"

    def test_lru_get_touch_protects_entry(self):
        cache = ProgramCache(capacity=2)
        cache.put(("key", 0), "program-0")
        cache.put(("key", 1), "program-1")
        assert cache.get(("key", 0)) == "program-0"  # touch: 0 becomes MRU
        cache.put(("key", 2), "program-2")           # evicts 1, not 0
        assert cache.get(("key", 0)) == "program-0"
        assert cache.get(("key", 1)) is None
        assert cache.get(("key", 2)) == "program-2"

    def test_lru_put_touch_refreshes_entry(self):
        cache = ProgramCache(capacity=2)
        cache.put(("key", 0), "program-0")
        cache.put(("key", 1), "program-1")
        cache.put(("key", 0), "program-0b")  # re-put: 0 becomes MRU
        cache.put(("key", 2), "program-2")   # evicts 1
        assert cache.get(("key", 0)) == "program-0b"
        assert cache.get(("key", 1)) is None

    def test_zero_capacity_never_stores(self):
        cache = ProgramCache(capacity=0)
        cache.put(("k",), "p")
        assert len(cache) == 0

    def test_hit_miss_counters_in_stats(self):
        cache = ProgramCache(capacity=2)
        cache.put(("k",), "p")
        cache.get(("k",))
        cache.get(("absent",))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["cache_dir"] is None

    def test_disk_spill_and_reload(self, tmp_path, chip, graphs):
        a = graphs["wiki-Vote"]
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        key = cache.key(a, None, 4)
        cache.put(key, chip.compile(a, tile_size=4))
        assert list(tmp_path.glob("*.pkl"))
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        assert fresh.get(key) is not None
        assert fresh.disk_hits == 1

    def test_rejects_file_as_cache_dir(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("x")
        with pytest.raises(ValueError, match="not a directory"):
            ProgramCache(cache_dir=blocker)


class TestDiskEviction:
    """The on-disk tier is bounded: spills sweep oldest-mtime entries."""

    def test_sweep_evicts_oldest_entry_over_cap(self, tmp_path):
        import os

        cache = ProgramCache(capacity=4, cache_dir=tmp_path,
                             max_disk_bytes=None)
        cache.put(("key", 0), "program-0")
        oldest = cache._disk_path(("key", 0))
        entry_bytes = oldest.stat().st_size
        os.utime(oldest, (1, 1))  # make it ancient
        cache.max_disk_bytes = int(entry_bytes * 1.5)  # room for one entry
        cache.put(("key", 1), "program-1")
        assert not oldest.exists()
        assert cache._disk_path(("key", 1)).exists()
        assert cache.disk_evictions >= 1
        assert cache.stats()["disk_entries"] == 1

    def test_disk_hit_touch_protects_entry_from_sweep(self, tmp_path):
        import os

        writer = ProgramCache(capacity=4, cache_dir=tmp_path,
                              max_disk_bytes=None)
        writer.put(("key", 0), "program-0")
        writer.put(("key", 1), "program-1")
        hot = writer._disk_path(("key", 0))
        cold = writer._disk_path(("key", 1))
        os.utime(hot, (1, 1))
        os.utime(cold, (2, 2))
        # A fresh process hits entry 0 on disk, touching its mtime.
        reader = ProgramCache(capacity=4, cache_dir=tmp_path,
                              max_disk_bytes=None)
        assert reader.get(("key", 0)) == "program-0"
        entry_bytes = hot.stat().st_size
        reader.max_disk_bytes = int(entry_bytes * 2.5)  # room for two
        reader.put(("key", 2), "program-2")
        assert hot.exists()       # recently used: survives
        assert not cold.exists()  # oldest mtime: swept

    def test_oversized_newest_entry_survives(self, tmp_path):
        # A single program larger than the cap must stay cached; the sweep
        # only evicts older entries.
        cache = ProgramCache(capacity=2, cache_dir=tmp_path, max_disk_bytes=1)
        cache.put(("key", 0), "program-0")
        assert cache._disk_path(("key", 0)).exists()

    def test_unbounded_tier_never_sweeps(self, tmp_path):
        cache = ProgramCache(capacity=8, cache_dir=tmp_path,
                             max_disk_bytes=None)
        for i in range(5):
            cache.put(("key", i), f"program-{i}")
        assert cache.stats()["disk_entries"] == 5
        assert cache.disk_evictions == 0

    def test_clear_disk_and_stats(self, tmp_path):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        cache.put(("key", 0), "program-0")
        cache.put(("key", 1), "program-1")
        stats = cache.disk_stats()
        assert stats["disk_entries"] == 2
        assert stats["disk_bytes"] > 0
        assert cache.clear_disk() == 2
        assert cache.disk_stats()["disk_entries"] == 0
        assert not list(tmp_path.glob("*.pkl"))

    def test_clear_disk_without_dir_is_a_noop(self):
        assert ProgramCache(capacity=2).clear_disk() == 0


class TestRunBatch:
    def test_repeated_jobs_hit_the_compile_cache(self, chip, graphs):
        queue = WorkloadQueue()
        for i in range(3):
            queue.add_spgemm(graphs["wiki-Vote"], label=f"req-{i}")
        report = chip.run_batch(queue, backend="analytic")
        assert report.n_jobs == 3
        assert report.cache_hits == 2
        assert [o.cache_hit for o in report.outcomes] == [False, True, True]
        # Cached programs are shared objects, not recompiles.
        programs = {id(o.result.program) for o in report.outcomes}
        assert len(programs) == 1

    def test_distinct_operands_compile_separately(self, chip, graphs):
        report = chip.run_batch(list(graphs.values()), backend="analytic")
        assert report.cache_hits == 0
        assert report.n_jobs == 2

    def test_accepts_bare_matrices_and_jobs(self, chip, graphs):
        a = graphs["facebook"]
        jobs = [a, WorkloadJob.spgemm(a, label="explicit")]
        report = chip.run_batch(jobs, backend="functional")
        assert report.n_jobs == 2
        assert report.cache_hits == 1
        assert report.outcomes[1].label == "explicit"

    def test_outputs_are_correct_per_job(self, chip, graphs):
        queue = WorkloadQueue()
        for name, a in graphs.items():
            queue.add_spgemm(a, label=name)
        report = chip.run_batch(queue, backend="analytic")
        for outcome, (name, a) in zip(report.outcomes, graphs.items()):
            dense = a.to_dense()
            assert np.allclose(outcome.result.output.to_dense(),
                               dense @ dense), name

    def test_aggregates_and_rows(self, chip, graphs):
        queue = WorkloadQueue()
        queue.add_spgemm(graphs["wiki-Vote"], label="w0")
        queue.add_spgemm(graphs["wiki-Vote"], label="w1")
        report = chip.run_batch(queue, backend="analytic")
        summary = report.summary()
        assert summary["jobs"] == 2
        assert summary["backend"] == "analytic"
        assert summary["total_cycles"] == pytest.approx(
            sum(o.result.report.cycles for o in report.outcomes))
        assert report.total_partial_products == 2 * \
            report.outcomes[0].result.program.total_partial_products
        rows = report.as_rows()
        assert rows[0]["job"] == "w0"
        assert rows[1]["compile_cached"] is True

    def test_functional_backend_reports_zero_cycles(self, chip, graphs):
        report = chip.run_batch([graphs["facebook"]], backend="functional")
        assert report.total_cycles == 0
        assert report.outcomes[0].result.report is None

    def test_tile_size_is_part_of_the_cache_key(self, chip, graphs):
        queue = WorkloadQueue()
        queue.add_spgemm(graphs["wiki-Vote"], label="t4", tile_size=4)
        queue.add_spgemm(graphs["wiki-Vote"], label="t2", tile_size=2)
        report = chip.run_batch(queue, backend="analytic")
        assert report.cache_hits == 0
        tiles = [o.result.program.tile_size for o in report.outcomes]
        assert tiles == [4, 2]

    def test_queue_survives_across_batches(self, chip, graphs):
        queue = WorkloadQueue()
        queue.add_spgemm(graphs["wiki-Vote"])
        first = chip.run_batch(queue, backend="analytic")
        second = chip.run_batch(queue, backend="analytic")
        assert first.cache_hits == 0
        assert second.cache_hits == 1  # cache persists on the queue
