"""Serving subsystem: queue, micro-batcher, scheduling policy."""

import threading
import time

import numpy as np
import pytest

from repro.core import ChipTopology, Session, SpGEMMSpec, WorkloadSpec
from repro.datasets import load_dataset
from repro.serve import (
    ALL_CHIPS_PER_JOB,
    WHOLE_JOBS_PER_CHIP,
    MicroBatcher,
    QueueClosed,
    QueueOverflow,
    RequestQueue,
    ScheduleDecision,
    ServeTimeout,
    choose_schedule,
)
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki-Vote", max_nodes=96, seed=5).adjacency_csr()


@pytest.fixture(scope="module")
def facebook():
    return load_dataset("facebook", max_nodes=96, seed=5).adjacency_csr()


def serve_specs(session, specs, **batcher_kwargs):
    """Run specs through a queue + batcher and return their results."""
    queue = RequestQueue()
    batcher = MicroBatcher(session, queue, **batcher_kwargs)
    requests = [queue.put(spec) for spec in specs]
    batcher.start()
    try:
        return [request.future.result(timeout=60) for request in requests], \
            batcher.stats
    finally:
        batcher.stop()


class TestRequestQueue:
    def test_fifo_batches(self, wiki):
        queue = RequestQueue()
        specs = [SpGEMMSpec(a=wiki, label=str(i)) for i in range(3)]
        for spec in specs:
            queue.put(spec)
        batch = queue.get_batch(max_batch=8, max_delay_s=0.0)
        assert [request.spec.label for request in batch] == ["0", "1", "2"]
        assert queue.depth == 0

    def test_batch_bounded_by_max_batch(self, wiki):
        queue = RequestQueue()
        for index in range(5):
            queue.put(SpGEMMSpec(a=wiki, label=str(index)))
        batch = queue.get_batch(max_batch=2, max_delay_s=0.0)
        assert [request.spec.label for request in batch] == ["0", "1"]
        assert queue.depth == 3

    def test_overflow_load_sheds_with_clear_error(self, wiki):
        queue = RequestQueue(max_depth=2)
        queue.put(SpGEMMSpec(a=wiki))
        queue.put(SpGEMMSpec(a=wiki))
        with pytest.raises(QueueOverflow, match="full"):
            queue.put(SpGEMMSpec(a=wiki))
        assert queue.shed == 1
        assert queue.depth == 2  # the shed request was never enqueued

    def test_closed_queue_rejects_puts(self, wiki):
        queue = RequestQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(SpGEMMSpec(a=wiki))

    def test_close_drains_then_returns_empty(self, wiki):
        queue = RequestQueue()
        queue.put(SpGEMMSpec(a=wiki, label="leftover"))
        queue.close()
        batch = queue.get_batch(max_batch=8, max_delay_s=0.0)
        assert [request.spec.label for request in batch] == ["leftover"]
        assert queue.get_batch(max_batch=8, max_delay_s=0.0) == []

    def test_get_batch_waits_for_late_arrivals(self, wiki):
        queue = RequestQueue()
        queue.put(SpGEMMSpec(a=wiki, label="first"))

        def late_put():
            time.sleep(0.05)
            queue.put(SpGEMMSpec(a=wiki, label="second"))

        thread = threading.Thread(target=late_put)
        thread.start()
        batch = queue.get_batch(max_batch=2, max_delay_s=2.0)
        thread.join()
        assert [request.spec.label for request in batch] == \
            ["first", "second"]

    def test_validation(self, wiki):
        with pytest.raises(ValueError, match="max_depth"):
            RequestQueue(max_depth=0)
        with pytest.raises(ValueError, match="max_batch"):
            RequestQueue().get_batch(max_batch=0, max_delay_s=0.0)


class TestMicroBatcher:
    def test_served_results_byte_identical_to_direct_run(self, wiki,
                                                         facebook):
        spec = SpGEMMSpec(a=wiki, b=facebook, verify=False, label="serve")
        with Session("Tile-4", backend="analytic") as direct_session:
            direct = direct_session.run(spec)
        with Session("Tile-4", backend="analytic") as session:
            (served,), _ = serve_specs(session, [spec])
        assert np.array_equal(served.output.indptr, direct.output.indptr)
        assert np.array_equal(served.output.indices, direct.output.indices)
        assert np.array_equal(served.output.data, direct.output.data)
        assert served.metrics["cycles"] == direct.metrics["cycles"]
        assert served.metrics["partial_products"] == \
            direct.metrics["partial_products"]

    def test_coalesces_operand_identical_requests(self, wiki):
        specs = [SpGEMMSpec(a=wiki, verify=False, label=f"req-{i}")
                 for i in range(4)]
        with Session("Tile-4", backend="analytic") as session:
            results, stats = serve_specs(session, specs, max_batch=4,
                                         max_delay_ms=200.0)
        assert [r.label for r in results] == [s.label for s in specs]
        assert stats.coalesced == 3  # one execution served all four
        assert len({r.metrics["cycles"] for r in results}) == 1
        for result in results[1:]:
            assert np.array_equal(result.output.data, results[0].output.data)

    def test_coalescing_ignores_label_and_source(self, wiki):
        # Serving clients stamp per-request labels (which may also reach
        # spec.source); neither must defeat coalescing — the product is
        # identical either way, like the program-cache key.
        specs = [SpGEMMSpec(a=wiki, verify=False, label=f"req-{i}",
                            source=f"req-{i}") for i in range(3)]
        with Session("Tile-4", backend="analytic") as session:
            results, stats = serve_specs(session, specs, max_batch=3,
                                         max_delay_ms=200.0)
        assert stats.coalesced == 2
        assert [r.label for r in results] == ["req-0", "req-1", "req-2"]

    def test_dispatch_thread_survives_a_poison_batch(self, wiki):
        # A bug anywhere in the dispatch path (here: a policy that raises
        # on one batch) must fail that batch's futures, not kill the
        # batcher thread — later requests still get served.
        calls = {"n": 0}

        def flaky_policy(specs, topology):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("policy exploded")
            return choose_schedule(specs, topology)

        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue, max_batch=1,
                                   policy=flaky_policy)
            first = queue.put(SpGEMMSpec(a=wiki, verify=False))
            batcher.start()
            try:
                # The poisoned batch still resolves (policy fallback keeps
                # the batch alive; a deeper failure would fail the future,
                # not hang it) ...
                assert first.future.result(timeout=60) is not None
                # ... and the dispatch thread is alive for the next one.
                second = queue.put(SpGEMMSpec(a=wiki, verify=False))
                assert second.future.result(timeout=60) \
                    .metrics["cycles"] > 0
            finally:
                batcher.stop()

    def test_coalescing_distinguishes_distinct_operands(self, wiki,
                                                        facebook):
        specs = [SpGEMMSpec(a=wiki, verify=False, label="w"),
                 SpGEMMSpec(a=facebook, verify=False, label="f")]
        with Session("Tile-4", backend="analytic") as session:
            results, stats = serve_specs(session, specs, max_batch=2,
                                         max_delay_ms=200.0)
        assert stats.coalesced == 0
        assert results[0].metrics["output_nnz"] != \
            results[1].metrics["output_nnz"]

    def test_failing_request_does_not_poison_batch_mates(self, wiki):
        good = SpGEMMSpec(a=wiki, verify=False, label="good")
        bad = WorkloadSpec(label="bad")  # base class: unsupported spec kind
        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue, max_batch=2,
                                   max_delay_ms=200.0)
            good_request = queue.put(good)
            bad_request = queue.put(bad)
            batcher.start()
            try:
                assert good_request.future.result(timeout=60) \
                    .metrics["cycles"] > 0
                with pytest.raises(TypeError, match="unsupported spec"):
                    bad_request.future.result(timeout=60)
            finally:
                batcher.stop()
            assert batcher.stats.responses == 1
            assert batcher.stats.failures == 1

    def test_cancelled_request_is_skipped(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue)
            request = queue.put(SpGEMMSpec(a=wiki))
            assert request.cancel() is True  # still queued: cancellable
            batcher.start()
            batcher.stop()
            assert request.future.cancelled()
            assert batcher.stats.cancelled == 1
            assert batcher.stats.responses == 0

    def test_expired_deadline_fails_with_serve_timeout(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue)
            request = queue.put(SpGEMMSpec(a=wiki), timeout_s=0.0)
            batcher.start()
            try:
                with pytest.raises(ServeTimeout, match="deadline"):
                    request.future.result(timeout=60)
            finally:
                batcher.stop()
            assert batcher.stats.timeouts == 1

    def test_stop_fails_requests_enqueued_after_close(self, wiki):
        # stop() closes the queue first; a request that sneaks into the
        # drain path must fail, not hang its client forever.
        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            batcher = MicroBatcher(session, queue)
            request = queue.put(SpGEMMSpec(a=wiki, verify=False))
            batcher.start()
            batcher.stop()  # serves the already-queued request, then exits
            assert request.future.done()
        with pytest.raises(QueueClosed):
            queue.put(SpGEMMSpec(a=wiki))

    def test_validation(self, wiki):
        with Session("Tile-4", backend="analytic") as session:
            queue = RequestQueue()
            with pytest.raises(ValueError, match="max_batch"):
                MicroBatcher(session, queue, max_batch=0)
            with pytest.raises(ValueError, match="max_delay_ms"):
                MicroBatcher(session, queue, max_delay_ms=-1.0)


def skewed_matrix(n: int = 64) -> CSRMatrix:
    """One dense row, the rest diagonal: a shard histogram the planner
    cannot balance (the dense row's partial products are indivisible)."""
    dense = np.eye(n)
    dense[0, :] = 1.0
    return CSRMatrix.from_dense(dense)


def uniform_matrix(n: int = 64) -> CSRMatrix:
    """Diagonal matrix: perfectly balanced row shards."""
    return CSRMatrix.from_dense(np.eye(n))


class TestSchedulePolicy:
    def test_single_chip_always_scales_up(self, wiki):
        specs = [SpGEMMSpec(a=wiki) for _ in range(8)]
        decision = choose_schedule(specs, None)
        assert decision.mode == ALL_CHIPS_PER_JOB
        decision = choose_schedule(specs, ChipTopology(n_chips=1))
        assert decision.mode == ALL_CHIPS_PER_JOB

    def test_single_job_always_scales_up(self, wiki):
        decision = choose_schedule([SpGEMMSpec(a=wiki)],
                                   ChipTopology(n_chips=4))
        assert decision.mode == ALL_CHIPS_PER_JOB

    def test_skewed_shards_push_whole_jobs_per_chip(self):
        specs = [SpGEMMSpec(a=skewed_matrix()) for _ in range(4)]
        decision = choose_schedule(specs, ChipTopology(n_chips=4))
        assert decision.mode == WHOLE_JOBS_PER_CHIP
        assert decision.predicted_speedup < 4.0

    def test_balanced_shards_with_few_jobs_scale_up(self):
        # 5 jobs on 4 chips: scale-out needs 2 waves; a ~4x split drains
        # the batch in ~1.25 job units, so splitting wins.
        specs = [SpGEMMSpec(a=uniform_matrix()) for _ in range(5)]
        decision = choose_schedule(specs, ChipTopology(n_chips=4))
        assert decision.mode == ALL_CHIPS_PER_JOB

    def test_full_waves_prefer_whole_jobs_per_chip(self):
        # 8 jobs on 4 chips: 2 exact waves beat 8 / (<4x) split time (65
        # rows cannot split 4 ways evenly, so the predicted speedup is
        # strictly below the chip count).
        specs = [SpGEMMSpec(a=uniform_matrix(65)) for _ in range(8)]
        decision = choose_schedule(specs, ChipTopology(n_chips=4))
        assert decision.predicted_speedup < 4.0
        assert decision.mode == WHOLE_JOBS_PER_CHIP

    def test_no_spgemm_operand_falls_back_to_scale_up(self):
        specs = [WorkloadSpec(label=str(i)) for i in range(8)]
        decision = choose_schedule(specs, ChipTopology(n_chips=4))
        assert decision.mode == ALL_CHIPS_PER_JOB


class TestMultichipServing:
    def test_scale_out_dispatch_stays_byte_identical(self, wiki, facebook):
        """Forcing whole-jobs-per-chip must not change any output: the
        single-chip twin produces the same product the multichip reduce
        would."""
        def force_scale_out(specs, topology):
            return ScheduleDecision(WHOLE_JOBS_PER_CHIP, len(specs),
                                    topology.n_chips, 1.0, "forced by test")

        graphs = [wiki, facebook]
        specs = [SpGEMMSpec(a=graph, verify=False, label=str(index))
                 for index, graph in enumerate(graphs)]
        with Session("Tile-4", backend="multichip", chips=2) as session:
            direct = [session.run(spec) for spec in specs]
            results, stats = serve_specs(session, specs, max_batch=2,
                                         max_delay_ms=200.0,
                                         policy=force_scale_out)
        assert stats.scale_out_batches == 1
        for served, reference in zip(results, direct):
            assert np.array_equal(served.output.indptr,
                                  reference.output.indptr)
            assert np.array_equal(served.output.indices,
                                  reference.output.indices)
            assert np.array_equal(served.output.data, reference.output.data)
            # Whole jobs ran on the per-chip backend, unsplit.
            assert served.provenance.backend == "analytic"
            assert reference.provenance.backend == "multichip"

    def test_scale_up_dispatch_uses_multichip_backend(self, wiki):
        specs = [SpGEMMSpec(a=wiki, verify=False)]
        with Session("Tile-4", backend="multichip", chips=2) as session:
            results, stats = serve_specs(session, specs)
        assert results[0].provenance.backend == "multichip"
        assert results[0].provenance.chips == 2
        assert stats.scale_out_batches == 0
