"""Additional coverage: controller read buffer, program stream decoding, and
suite statistics helpers."""

import numpy as np
import pytest

from repro.arch.isa import Opcode, decode_from_bytes, decode_mmh
from repro.datasets.suite import degree_statistics, load_dataset
from repro.sim.engine import Simulator
from repro.sim.memory import HBMChannel, MemoryController
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


@pytest.fixture
def controller_env():
    sim = Simulator()
    params = SimulationParams().scaled(controller_buffer_lines=2)
    stats = StatsCollector()
    channel = HBMChannel(sim, params, 0, stats)
    controller = MemoryController(sim, params, 0, channel, stats)
    return sim, params, channel, controller


class TestControllerReadBuffer:
    def _read(self, sim, controller, addr):
        done = []
        controller.read(addr, 8, lambda: done.append(sim.now))
        sim.run()
        return done[0]

    def test_repeat_read_hits_buffer(self, controller_env):
        sim, params, channel, controller = controller_env
        self._read(sim, controller, 0x100)
        bytes_after_first = channel.bytes_read
        self._read(sim, controller, 0x100)
        assert controller.reads_buffered == 1
        assert channel.bytes_read == bytes_after_first  # no second DRAM trip

    def test_buffer_hit_is_faster_than_dram(self, controller_env):
        sim, params, channel, controller = controller_env
        first = self._read(sim, controller, 0x200)
        start = sim.now
        second = self._read(sim, controller, 0x200)
        assert (second - start) < first

    def test_lru_eviction_limits_capacity(self, controller_env):
        sim, params, channel, controller = controller_env
        line = params.coalesce_line_bytes
        for i in range(4):  # capacity is 2 lines
            self._read(sim, controller, i * line)
        self._read(sim, controller, 0)  # line 0 was evicted -> DRAM again
        assert controller.reads_buffered == 0
        assert channel.bytes_read == 5 * line

    def test_buffer_disabled_when_capacity_zero(self):
        sim = Simulator()
        params = SimulationParams().scaled(controller_buffer_lines=0)
        stats = StatsCollector()
        channel = HBMChannel(sim, params, 0, stats)
        controller = MemoryController(sim, params, 0, channel, stats)
        for _ in range(2):
            done = []
            controller.read(0x40, 8, lambda: done.append(True))
            sim.run()
        assert controller.reads_buffered == 0


class TestProgramBinaryStream:
    def test_binary_stream_decodes_to_same_opcodes(self, tiny_program):
        blob = tiny_program.encode_binary()
        words = [decode_from_bytes(blob[i:i + 16]) for i in range(0, len(blob), 16)]
        decoded = [decode_mmh(word) for word in words]
        assert len(decoded) == tiny_program.n_instructions
        assert all(instr.opcode is Opcode.MMH4 for instr in decoded)

    def test_binary_stream_is_deterministic(self, tiny_program):
        assert tiny_program.encode_binary() == tiny_program.encode_binary()


class TestSuiteStatistics:
    def test_degree_statistics_fields(self):
        dataset = load_dataset("facebook", max_nodes=96)
        stats = degree_statistics(dataset.adjacency)
        assert set(stats) == {"mean_degree", "std_degree", "max_degree", "degree_cv"}
        assert stats["max_degree"] >= stats["mean_degree"] > 0

    def test_degree_statistics_of_empty_graph(self):
        from repro.sparse.coo import COOMatrix

        stats = degree_statistics(COOMatrix.empty((4, 4)))
        assert stats["mean_degree"] == 0.0
        assert stats["degree_cv"] == 0.0

    def test_power_law_has_heavier_tail_than_mesh(self):
        power_law = degree_statistics(load_dataset("facebook", max_nodes=256).adjacency)
        mesh = degree_statistics(load_dataset("m133-b3", max_nodes=256).adjacency)
        assert power_law["degree_cv"] > mesh["degree_cv"]
