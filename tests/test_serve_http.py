"""HTTP front-end: endpoints, error mapping, byte-identity over the wire."""

import http.client
import json

import numpy as np
import pytest

from repro.core import Session, SpGEMMSpec
from repro.datasets import load_dataset
from repro.serve import BackgroundServer, QueueOverflow, ReproServer


@pytest.fixture(scope="module")
def session():
    with Session("Tile-4", backend="analytic") as session:
        yield session


@pytest.fixture(scope="module")
def server(session):
    with BackgroundServer(ReproServer(session, port=0, max_batch=4,
                                      max_delay_ms=2.0)) as background:
        yield background.server


def request(server, method, path, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestInfraEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["backend"] == "analytic"
        assert payload["config"] == "Tile-4"

    def test_stats_shape(self, server):
        status, payload = request(server, "GET", "/stats")
        assert status == 200
        for key in ("queue_depth", "requests", "responses", "batches",
                    "mean_batch_size", "coalesced", "shed",
                    "latency_p50_ms", "latency_p95_ms", "cache_hit_rate"):
            assert key in payload, key

    def test_unknown_path_404(self, server):
        status, payload = request(server, "GET", "/nope")
        assert status == 404
        assert "/v1/spgemm" in payload["error"]

    def test_wrong_method_405(self, server):
        assert request(server, "POST", "/healthz")[0] == 405
        assert request(server, "GET", "/v1/spgemm")[0] == 405


class TestSpGEMMEndpoint:
    def test_dataset_request(self, server):
        status, row = request(server, "POST", "/v1/spgemm",
                              {"dataset": "wiki-Vote", "max_nodes": 96,
                               "seed": 5, "label": "hello"})
        assert status == 200
        assert row["label"] == "hello"
        assert row["kind"] == "spgemm"
        assert row["cycles"] > 0
        assert row["output_nnz"] > 0
        assert "request_id" in row
        assert "_result" not in row  # internal handle never leaks

    def test_served_output_byte_identical_to_direct_run(self, server,
                                                        session):
        adjacency = load_dataset("wiki-Vote", max_nodes=96,
                                 seed=5).adjacency_csr()
        direct = session.run(SpGEMMSpec(a=adjacency, verify=False))
        status, row = request(server, "POST", "/v1/spgemm",
                              {"dataset": "wiki-Vote", "max_nodes": 96,
                               "seed": 5, "include_output": True})
        assert status == 200
        served = row["output"]
        assert np.array_equal(np.asarray(served["indptr"]),
                              direct.output.indptr)
        assert np.array_equal(np.asarray(served["indices"]),
                              direct.output.indices)
        assert np.array_equal(np.asarray(served["data"]),
                              direct.output.data)
        assert row["cycles"] == direct.metrics["cycles"]

    def test_explicit_csr_operands(self, server):
        dense = np.array([[1.0, 0.0], [2.0, 3.0]])
        operand = {"indptr": [0, 1, 3], "indices": [0, 0, 1],
                   "data": [1.0, 2.0, 3.0], "shape": [2, 2]}
        status, row = request(server, "POST", "/v1/spgemm",
                              {"a": operand, "include_output": True})
        assert status == 200
        indptr = np.asarray(row["output"]["indptr"])
        indices = np.asarray(row["output"]["indices"])
        data = np.asarray(row["output"]["data"])
        product = np.zeros((2, 2))
        for i in range(2):
            for slot in range(indptr[i], indptr[i + 1]):
                product[i, indices[slot]] = data[slot]
        assert np.allclose(product, dense @ dense)

    def test_bad_json_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=60)
        try:
            connection.request("POST", "/v1/spgemm", body="{not json")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_missing_operand_400(self, server):
        status, payload = request(server, "POST", "/v1/spgemm",
                                  {"label": "no-operand"})
        assert status == 400
        assert "dataset" in payload["error"]

    def test_unknown_dataset_400(self, server):
        status, _ = request(server, "POST", "/v1/spgemm",
                            {"dataset": "does-not-exist"})
        assert status == 400

    def test_non_numeric_timeout_400(self, server):
        # A bad timeout_s must be a clean 400, not a dropped connection.
        status, payload = request(server, "POST", "/v1/spgemm",
                                  {"dataset": "wiki-Vote", "max_nodes": 96,
                                   "timeout_s": "abc"})
        assert status == 400
        assert "float" in payload["error"] or "abc" in payload["error"]

    def test_malformed_operand_400(self, server):
        status, payload = request(server, "POST", "/v1/spgemm",
                                  {"a": {"indptr": [0, 1]}})
        assert status == 400
        assert "missing" in payload["error"]

    def test_queue_overflow_maps_to_503(self, server, monkeypatch):
        def shed(spec, timeout_s=None, pins=(), tenant="default"):
            raise QueueOverflow("request queue is full (test)",
                                retry_after_s=0.25)

        monkeypatch.setattr(server.queue, "put", shed)
        status, payload = request(server, "POST", "/v1/spgemm",
                                  {"dataset": "wiki-Vote", "max_nodes": 96})
        assert status == 503
        assert "full" in payload["error"]
        assert payload["tenant"] == "default"
        assert payload["retry_after_s"] == 0.25


class TestGCNEndpoint:
    def test_gcn_request(self, server):
        status, row = request(server, "POST", "/v1/gcn",
                              {"dataset": "cora", "max_nodes": 64,
                               "feature_dim": 8, "hidden_dim": 4})
        assert status == 200
        assert row["kind"] == "gcn_layer"
        assert row["total_cycles"] > 0

    def test_gcn_requires_dataset(self, server):
        status, payload = request(server, "POST", "/v1/gcn",
                                  {"feature_dim": 8})
        assert status == 400
        assert "dataset" in payload["error"]


class TestLifecycle:
    def test_clean_shutdown_refuses_new_connections(self):
        with Session("Tile-4", backend="analytic") as session:
            background = BackgroundServer(ReproServer(session, port=0))
            background.start()
            port = background.port
            status, _ = request(background.server, "GET", "/healthz")
            assert status == 200
            background.stop()
            with pytest.raises(OSError):
                connection = http.client.HTTPConnection("127.0.0.1", port,
                                                        timeout=5)
                try:
                    connection.request("GET", "/healthz")
                    connection.getresponse()
                finally:
                    connection.close()

    def test_keep_alive_serves_multiple_requests(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=60)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
