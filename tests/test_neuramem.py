"""Unit tests for the NeuraMem hash-accumulation unit (Algorithm 2)."""

import pytest

from repro.compiler.program import HACCMacroOp
from repro.sim.engine import Simulator
from repro.sim.neuramem import NeuraMem
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


def make_hacc(tag, value, counter, row=0, col=0, addr=0):
    return HACCMacroOp(tag=tag, value=value, counter=counter, out_row=row,
                       out_col=col, writeback_addr=addr)


@pytest.fixture
def mem_env():
    """A NeuraMem wired to record evictions, spills and writebacks."""
    sim = Simulator()
    params = SimulationParams()
    stats = StatsCollector()
    events = {"evicted": [], "spilled": [], "writes": [], "applied": 0}

    def build(hashlines=8, eviction_mode="rolling", resume=None):
        return NeuraMem(
            mem_id=0, position=(0, 0), sim=sim, params=params, stats=stats,
            hashlines=hashlines, hash_engines=2, eviction_mode=eviction_mode,
            writeback=lambda addr, nbytes: events["writes"].append((addr, nbytes)),
            on_evict=lambda line, t: events["evicted"].append((line.tag, line.value, t)),
            on_spill=lambda line, t: events["spilled"].append((line.tag, line.value)),
            on_applied=lambda: events.__setitem__("applied", events["applied"] + 1),
            resume_lookup=resume,
        )

    return sim, build, events


class TestAccumulation:
    def test_single_contribution_evicts_immediately(self, mem_env):
        sim, build, events = mem_env
        mem = build()
        mem.receive_hacc(make_hacc(tag=7, value=2.5, counter=1, addr=0x40), 0.0)
        sim.run()
        assert events["evicted"] == [(7, 2.5, pytest.approx(events["evicted"][0][2]))]
        assert events["writes"][0][0] == 0x40
        assert mem.evictions == 1
        assert mem.occupancy == 0

    def test_multiple_contributions_accumulate_then_evict(self, mem_env):
        sim, build, events = mem_env
        mem = build()
        for value in (1.0, 2.0, 3.0):
            mem.receive_hacc(make_hacc(tag=9, value=value, counter=3), 0.0)
        sim.run()
        assert len(events["evicted"]) == 1
        assert events["evicted"][0][1] == pytest.approx(6.0)
        assert mem.accumulations == 2
        assert mem.insertions == 1

    def test_distinct_tags_use_distinct_lines(self, mem_env):
        sim, build, events = mem_env
        mem = build()
        mem.receive_hacc(make_hacc(tag=1, value=1.0, counter=2), 0.0)
        mem.receive_hacc(make_hacc(tag=2, value=1.0, counter=2), 0.0)
        sim.run()
        assert mem.occupancy == 2
        assert mem.peak_occupancy == 2
        assert events["evicted"] == []

    def test_applied_callback_counts_every_hacc(self, mem_env):
        sim, build, events = mem_env
        mem = build()
        for i in range(5):
            mem.receive_hacc(make_hacc(tag=i, value=1.0, counter=2), 0.0)
        sim.run()
        assert events["applied"] == 5

    def test_hacc_latency_recorded_against_eviction(self, mem_env):
        sim, build, events = mem_env
        mem = build()
        mem.receive_hacc(make_hacc(tag=3, value=1.0, counter=2), 0.0)
        mem.receive_hacc(make_hacc(tag=3, value=1.0, counter=2), 0.0)
        sim.run()
        stats_hist = mem.stats.histograms["hacc_cpi"]
        assert stats_hist.total_observations == 2

    def test_invalid_eviction_mode(self, mem_env):
        _sim, build, _events = mem_env
        with pytest.raises(ValueError):
            NeuraMem(0, (0, 0), Simulator(), SimulationParams(), StatsCollector(),
                     hashlines=4, hash_engines=1, eviction_mode="sometimes")


class TestBarrierEviction:
    def test_completed_lines_stay_until_flush(self, mem_env):
        sim, build, events = mem_env
        mem = build(eviction_mode="barrier")
        mem.receive_hacc(make_hacc(tag=5, value=4.0, counter=1), 0.0)
        sim.run()
        assert events["evicted"] == []
        assert mem.occupancy == 1
        flushed = mem.barrier_flush()
        assert flushed == 1
        assert len(events["evicted"]) == 1
        assert mem.occupancy == 0

    def test_finalize_also_flushes_incomplete_lines(self, mem_env):
        sim, build, events = mem_env
        mem = build(eviction_mode="barrier")
        mem.receive_hacc(make_hacc(tag=6, value=1.0, counter=3), 0.0)
        sim.run()
        flushed = mem.finalize()
        assert flushed == 1
        assert mem.stats.counters["neuramem.incomplete_lines"] == 1


class TestCapacityAndSpills:
    def test_overflow_spills_a_victim(self, mem_env):
        sim, build, events = mem_env
        mem = build(hashlines=2)
        for tag in range(3):
            mem.receive_hacc(make_hacc(tag=tag, value=1.0, counter=2), 0.0)
        sim.run()
        assert mem.spills == 1
        assert len(events["spilled"]) == 1
        assert mem.occupancy == 2

    def test_resume_lookup_restores_counter_progress(self, mem_env):
        sim, build, events = mem_env
        # Tag 42 had already absorbed 2 of its 3 contributions before a spill.
        mem = build(resume=lambda tag: 2 if tag == 42 else 0)
        mem.receive_hacc(make_hacc(tag=42, value=1.0, counter=3), 0.0)
        sim.run()
        # remaining = counter - 1 - already_applied = 0 -> immediate eviction.
        assert len(events["evicted"]) == 1

    def test_completed_lines_are_preferred_spill_victims(self, mem_env):
        sim, build, events = mem_env
        mem = build(hashlines=2, eviction_mode="barrier")
        mem.receive_hacc(make_hacc(tag=1, value=1.0, counter=1), 0.0)  # completes
        mem.receive_hacc(make_hacc(tag=2, value=1.0, counter=2), 0.0)
        mem.receive_hacc(make_hacc(tag=3, value=1.0, counter=2), 0.0)  # overflow
        sim.run()
        # The completed line (tag 1) is evicted instead of spilling live data.
        assert [e[0] for e in events["evicted"]] == [1]
        assert mem.spills == 0


class TestEngineTiming:
    def test_engines_limit_throughput(self):
        sim = Simulator()
        params = SimulationParams()
        stats = StatsCollector()
        single = NeuraMem(0, (0, 0), sim, params, stats, hashlines=64,
                          hash_engines=1, eviction_mode="rolling")
        for i in range(8):
            single.receive_hacc(make_hacc(tag=i, value=1.0, counter=2), 0.0)
        sim.run()
        single_time = sim.now

        sim2 = Simulator()
        quad = NeuraMem(0, (0, 0), sim2, params, StatsCollector(), hashlines=64,
                        hash_engines=4, eviction_mode="rolling")
        for i in range(8):
            quad.receive_hacc(make_hacc(tag=i, value=1.0, counter=2), 0.0)
        sim2.run()
        assert sim2.now < single_time
