"""End-to-end tests for the ``repro analyze`` CLI command."""

from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestAnalyzeCommand:
    def test_all_passes_clean_on_repo(self, capsys):
        assert main(["analyze", "--max-nodes", "96"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "ir/structure/locks" in out

    def test_single_pass_selection(self, capsys):
        assert main(["analyze", "--pass", "locks"]) == 0
        out = capsys.readouterr().out
        assert "locks pass(es)" in out
        assert "ir/" not in out

    def test_nonzero_exit_on_bad_fixture(self, capsys):
        exit_code = main(["analyze", "--pass", "locks",
                          str(FIXTURES / "lockcheck_bad.py")])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "[locks:guard-violation]" in out
        assert "[locks:bare-acquire]" in out
        assert "[locks:unjoined-thread]" in out

    def test_zero_exit_on_good_fixture(self, capsys):
        assert main(["analyze", "--pass", "locks",
                     str(FIXTURES / "lockcheck_good.py")]) == 0

    def test_ir_pass_runs_standalone(self, capsys):
        assert main(["analyze", "--pass", "ir", "--max-nodes", "64"]) == 0

    def test_structure_pass_runs_standalone(self, capsys):
        assert main(["analyze", "--pass", "structure",
                     "--max-nodes", "64"]) == 0
