"""Tests for ``Session(verify=...)`` and the disk-cache verify path:
memoized once-per-digest verification, byte-identical results, and the
drop-and-recompile handling of ill-formed disk cache entries."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.analysis.findings import VerificationError
from repro.compiler.lowering import compile_spgemm
from repro.compiler.program import Program
from repro.core.runner import CACHE_SCHEMA_VERSION, ProgramCache
from repro.core.session import Session
from repro.core.specs import GCNLayerSpec, SpGEMMSpec
from repro.datasets.suite import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("wiki-Vote", max_nodes=96, seed=0)


class TestVerifyMode:
    def test_default_is_off(self, dataset):
        with Session("Tile-4", backend="analytic") as session:
            session.run(SpGEMMSpec(a=dataset.adjacency_csr()))
            assert session.verify_stats() == {
                "verify_mode": None, "verify_runs": 0, "verify_skips": 0}

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="verify mode"):
            Session("Tile-4", backend="analytic", verify="sometimes")

    @pytest.mark.parametrize("mode", ["quick", "full"])
    def test_verifies_once_per_digest(self, dataset, mode):
        a_csr = dataset.adjacency_csr()
        with Session("Tile-4", backend="analytic", verify=mode) as session:
            session.run(SpGEMMSpec(a=a_csr))
            session.run(SpGEMMSpec(a=a_csr))
            session.run(SpGEMMSpec(a=a_csr))
            stats = session.verify_stats()
        assert stats["verify_mode"] == mode
        assert stats["verify_runs"] == 1
        assert stats["verify_skips"] == 2

    def test_distinct_programs_each_verified(self, dataset):
        a_csr = dataset.adjacency_csr()
        other = load_dataset("facebook", max_nodes=64, seed=1)
        with Session("Tile-4", backend="analytic",
                     verify="full") as session:
            session.run(SpGEMMSpec(a=a_csr))
            session.run(SpGEMMSpec(a=other.adjacency_csr()))
            assert session.verify_stats()["verify_runs"] == 2

    def test_gcn_layer_path_verified(self, dataset):
        with Session("Tile-4", backend="analytic",
                     verify="full") as session:
            session.run(GCNLayerSpec(dataset=dataset.adjacency,
                                     feature_dim=8, hidden_dim=4))
            session.run(GCNLayerSpec(dataset=dataset.adjacency,
                                     feature_dim=8, hidden_dim=4))
            stats = session.verify_stats()
        assert stats["verify_runs"] == 1
        assert stats["verify_skips"] == 1

    def test_results_byte_identical_with_verification(self, dataset):
        spec = SpGEMMSpec(a=dataset.adjacency_csr())
        with Session("Tile-4", backend="analytic") as plain:
            baseline = plain.run(spec)
        with Session("Tile-4", backend="analytic",
                     verify="full") as verified:
            checked = verified.run(spec)
        assert np.array_equal(baseline.output.indptr, checked.output.indptr)
        assert np.array_equal(baseline.output.indices,
                              checked.output.indices)
        assert np.array_equal(baseline.output.data, checked.output.data)

    def test_subprocess_state_ships_verify_mode(self, dataset):
        with Session("Tile-4", backend="analytic",
                     verify="quick") as session:
            assert session._subprocess_state()["verify"] == "quick"

    def test_broken_program_raises_verification_error(self, dataset):
        a_csr = dataset.adjacency_csr()
        with Session("Tile-4", backend="analytic",
                     verify="full") as session:
            key = session.cache.key(a_csr, None, 4)
            program = session.chip.compile(a_csr, None, tile_size=4)
            counts = program.arrays.out_counts.copy()
            counts[0] += 1
            broken = Program(
                arrays=dataclasses.replace(program.arrays,
                                           out_counts=counts),
                address_map=program.address_map, shape=program.shape,
                tile_size=program.tile_size, a_nnz=program.a_nnz,
                b_nnz=program.b_nnz,
                total_partial_products=program.total_partial_products,
                source=program.source)
            session.cache.put(key, broken)
            with pytest.raises(VerificationError):
                session.run(SpGEMMSpec(a=a_csr, tile_size=4))
            # The key was un-reserved, so a repaired entry re-verifies.
            session.cache.put(key, program)
            session.run(SpGEMMSpec(a=a_csr, tile_size=4))
            assert session.verify_stats()["verify_runs"] == 1


class TestDiskCacheVerification:
    def make_program(self, dataset):
        return compile_spgemm(dataset.adjacency_csc(),
                              dataset.features(seed=7), tile_size=4,
                              source="disk-verify-test")

    def test_clean_disk_entry_loads(self, dataset, tmp_path):
        writer = ProgramCache(4, cache_dir=tmp_path)
        program = self.make_program(dataset)
        key = ("unit", "spgemm", "a", "b", 4)
        writer.put(key, program)
        reader = ProgramCache(4, cache_dir=tmp_path)
        assert reader.get(key) is not None
        assert reader.verify_failed == 0

    def test_illformed_disk_entry_dropped_and_counted(self, dataset,
                                                      tmp_path):
        cache = ProgramCache(4, cache_dir=tmp_path)
        program = self.make_program(dataset)
        counts = program.arrays.out_counts.copy()
        counts[0] += 1
        broken = Program(
            arrays=dataclasses.replace(program.arrays, out_counts=counts),
            address_map=program.address_map, shape=program.shape,
            tile_size=program.tile_size, a_nnz=program.a_nnz,
            b_nnz=program.b_nnz,
            total_partial_products=program.total_partial_products,
            source=program.source)
        key = ("unit", "spgemm", "a", "b", 4)
        path = cache._disk_path(key)
        with path.open("wb") as handle:
            pickle.dump((CACHE_SCHEMA_VERSION, key, broken), handle)
        assert cache.get(key) is None  # dropped, recorded as a miss
        assert not path.exists()  # entry unlinked like any corrupt pickle
        assert cache.verify_failed == 1
        assert cache.misses == 1
        assert cache.stats()["verify_failed"] == 1
