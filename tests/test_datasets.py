"""Unit tests for the synthetic dataset generators and the named suite."""

import numpy as np
import pytest

from repro.datasets import generators
from repro.datasets.features import (
    dense_feature_matrix,
    feature_matrix,
    gcn_weight_matrix,
)
from repro.datasets.suite import (
    GNN_SUITE,
    TABLE1_SUITE,
    available_datasets,
    degree_statistics,
    load_dataset,
    load_table1_suite,
)


class TestGenerators:
    @pytest.mark.parametrize("generator,kwargs", [
        (generators.erdos_renyi_graph, {"m": 200}),
        (generators.barabasi_albert_graph, {"attach": 3}),
        (generators.kronecker_power_law_graph, {"m": 300}),
        (generators.mesh_graph_2d, {}),
        (generators.mesh_graph_3d, {}),
        (generators.road_network_graph, {}),
        (generators.small_world_graph, {}),
        (generators.circuit_graph, {}),
    ])
    def test_generators_produce_valid_square_adjacency(self, generator, kwargs):
        graph = generator(100, **kwargs)
        assert graph.shape == (100, 100)
        assert graph.nnz > 0
        graph.validate()

    def test_generators_are_deterministic(self):
        a = generators.barabasi_albert_graph(80, attach=2, seed=42)
        b = generators.barabasi_albert_graph(80, attach=2, seed=42)
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_different_seeds_differ(self):
        a = generators.erdos_renyi_graph(80, 200, seed=1)
        b = generators.erdos_renyi_graph(80, 200, seed=2)
        assert not np.array_equal(a.to_dense(), b.to_dense())

    def test_mesh_graph_is_symmetric(self):
        dense = generators.mesh_graph_2d(64).to_dense()
        assert np.array_equal(dense, dense.T)

    def test_power_law_graph_has_skewed_degrees(self):
        graph = generators.barabasi_albert_graph(400, attach=3, seed=0)
        stats = degree_statistics(graph)
        mesh_stats = degree_statistics(generators.mesh_graph_2d(400))
        assert stats["degree_cv"] > mesh_stats["degree_cv"]

    def test_road_network_low_average_degree(self):
        stats = degree_statistics(generators.road_network_graph(400))
        assert stats["mean_degree"] < 6.0

    def test_dense_matrix_generator(self):
        dense = generators.dense_matrix(16)
        assert dense.nnz == 256

    def test_tiny_sizes_do_not_crash(self):
        for gen in (generators.erdos_renyi_graph, generators.mesh_graph_2d,
                    generators.small_world_graph, generators.circuit_graph):
            graph = gen(1) if gen is not generators.erdos_renyi_graph else gen(1, 1)
            assert graph.shape[0] >= 1


class TestSuite:
    def test_table1_has_twenty_datasets(self):
        assert len(TABLE1_SUITE) == 20

    def test_gnn_suite_contains_cora(self):
        assert "cora" in GNN_SUITE
        assert GNN_SUITE["cora"].feature_dim == 1433

    def test_available_datasets_covers_both_suites(self):
        names = available_datasets()
        assert set(TABLE1_SUITE) <= set(names)
        assert set(GNN_SUITE) <= set(names)

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_load_dataset_scaling_cap(self):
        dataset = load_dataset("web-Google", max_nodes=512)
        assert dataset.n_nodes <= 520
        assert dataset.scale < 1.0

    def test_load_dataset_deterministic(self):
        a = load_dataset("facebook", max_nodes=128, seed=3)
        b = load_dataset("facebook", max_nodes=128, seed=3)
        assert np.array_equal(a.adjacency.to_dense(), b.adjacency.to_dense())

    def test_load_dense_pseudo_dataset(self):
        dataset = load_dataset("dense", max_nodes=64)
        assert dataset.adjacency.sparsity < 0.05

    def test_dataset_accessors(self):
        dataset = load_dataset("wiki-Vote", max_nodes=128)
        csr = dataset.adjacency_csr()
        csc = dataset.adjacency_csc()
        assert np.allclose(csr.to_dense(), csc.to_dense())
        features = dataset.features(dim=16)
        assert features.shape == (dataset.n_nodes, 16)

    def test_paper_metadata_preserved(self):
        spec = TABLE1_SUITE["facebook"]
        assert spec.paper_nodes == 4039
        assert spec.paper_edges == 60050
        assert spec.paper_bloat_percent == pytest.approx(2872.80)

    def test_load_table1_suite_small(self):
        suite = load_table1_suite(max_nodes=64)
        assert len(suite) == 20
        assert all(ds.n_nodes <= 70 for ds in suite)


class TestFeatures:
    def test_feature_matrix_shape_and_density(self):
        features = feature_matrix(50, 40, density=0.25, seed=1)
        assert features.shape == (50, 40)
        per_row = features.row_nnz_counts()
        assert np.all(per_row == per_row[0])
        assert per_row[0] == pytest.approx(10, abs=1)

    def test_feature_matrix_invalid_args(self):
        with pytest.raises(ValueError):
            feature_matrix(0, 4)
        with pytest.raises(ValueError):
            feature_matrix(4, 0)

    def test_feature_matrix_density_clamped(self):
        features = feature_matrix(10, 8, density=5.0)
        assert features.row_nnz(0) == 8

    def test_dense_feature_matrix(self):
        dense = dense_feature_matrix(12, 6, seed=0)
        assert dense.shape == (12, 6)

    def test_gcn_weight_matrix_glorot_range(self):
        weight = gcn_weight_matrix(64, 32, seed=0)
        limit = np.sqrt(6.0 / (64 + 32))
        assert weight.shape == (64, 32)
        assert np.all(np.abs(weight) <= limit + 1e-12)

    def test_gcn_weight_matrix_invalid(self):
        with pytest.raises(ValueError):
            gcn_weight_matrix(0, 3)
