"""Versatility tests (dense workloads on the accelerator) and example smoke tests.

Section 2.2 argues NeuraChip handles dense workloads as well as hyper-sparse
ones; the first class checks the full pipeline on dense operands.  The second
class runs every shipped example end to end so the documentation stays honest.
"""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.arch.config import TILE4
from repro.core.api import NeuraChip
from repro.sim.accelerator import NeuraChipAccelerator

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestDenseWorkloads:
    def test_dense_gemm_through_cycle_simulator(self):
        rng = np.random.default_rng(0)
        a = rng.random((24, 24))
        b = rng.random((24, 24))
        chip = NeuraChip(TILE4)
        result = chip.run_spgemm(a, b)
        assert result.correct is True
        assert np.allclose(result.output.to_dense(), a @ b)
        # Dense x dense: every output element receives the full inner-dimension
        # worth of partial products.
        assert result.program.total_partial_products == 24 ** 3

    def test_sparse_times_dense_feature_matrix(self):
        rng = np.random.default_rng(1)
        adjacency = (rng.random((32, 32)) < 0.1) * 1.0
        features = rng.random((32, 8))
        chip = NeuraChip(TILE4)
        result = chip.run_spgemm(adjacency, features, mode="functional")
        assert np.allclose(result.output.to_dense(), adjacency @ features)

    def test_simulation_kcps_reported(self):
        rng = np.random.default_rng(2)
        a = (rng.random((32, 32)) < 0.2) * rng.random((32, 32))
        chip = NeuraChip(TILE4)
        report = NeuraChipAccelerator(TILE4).run(chip.compile(a), verify=False)
        assert report.simulation_kcps > 0
        assert report.wall_clock_seconds > 0


@pytest.mark.parametrize("example", [
    "quickstart.py",
    "batched_backends.py",
    "gcn_inference.py",
    "design_space_exploration.py",
    "mapping_exploration.py",
    "sharded_execution.py",
    "spgemm_baseline_comparison.py",
])
def test_examples_run_end_to_end(example, monkeypatch, capsys):
    """Every example script must execute without errors."""
    path = EXAMPLES_DIR / example
    assert path.exists(), f"missing example {example}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"
