"""Kernel-layer equivalence: numpy impls must match the reference loops.

The numpy kernels are only trustworthy if they reproduce the Python
reference dataflows *exactly* — same output structure, same values, and
bit-identical op counts (``partial_products``, ``accumulations``,
``output_nnz``, ``mmh_instructions``) — across matrix shapes, densities,
and degenerate structures (empty rows/columns, empty operands).
"""

import numpy as np
import pytest

from repro.sparse import kernels
from repro.sparse.csr import CSRMatrix


def _random_sparse(rng, shape, density):
    dense = (rng.random(shape) < density) * rng.random(shape)
    return CSRMatrix.from_dense(dense), dense


def _assert_equivalent(reference, result):
    __tracebackhide__ = True
    assert result.partial_products == reference.partial_products
    assert result.accumulations == reference.accumulations
    assert result.output_nnz == reference.output_nnz
    assert result.multiply_ops == reference.multiply_ops
    assert result.intermediate_batches == reference.intermediate_batches
    assert (result.extra.get("mmh_instructions")
            == reference.extra.get("mmh_instructions"))
    assert result.bloat_percent == pytest.approx(reference.bloat_percent)
    assert np.array_equal(result.matrix.indptr, reference.matrix.indptr)
    assert np.array_equal(result.matrix.indices, reference.matrix.indices)
    assert np.allclose(result.matrix.data, reference.matrix.data,
                       rtol=1e-12, atol=1e-12)


class TestDispatch:
    def test_all_eight_kernels_registered(self):
        registered = set(kernels.available_kernels())
        expected = {(flow, impl) for flow in kernels.DATAFLOWS
                    for impl in kernels.IMPLS}
        assert expected <= registered

    def test_unknown_dataflow_lists_options(self):
        with pytest.raises(ValueError, match="tiled_gustavson"):
            kernels.get_kernel("diagonal", "numpy")

    def test_unknown_impl_lists_options(self):
        with pytest.raises(ValueError, match="numpy"):
            kernels.get_kernel("inner", "fortran")

    def test_available_impls_per_dataflow(self):
        assert set(kernels.available_impls("row_wise")) == {"python", "numpy"}

    def test_tiled_numpy_rejects_bad_tile(self):
        a = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            kernels.spgemm(a, a, "tiled_gustavson", "numpy", tile_rows=0)


class TestNumpyMatchesPython:
    """Property-style sweep over random COO matrices."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_square_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 36))
        density = float(rng.choice([0.02, 0.08, 0.25, 0.6]))
        a, da = _random_sparse(rng, (n, n), density)
        b, db = _random_sparse(rng, (n, n), density)
        tile = int(rng.choice([1, 2, 4, 8]))
        for flow in kernels.DATAFLOWS:
            reference = kernels.spgemm(a, b, flow, "python", tile_rows=tile)
            result = kernels.spgemm(a, b, flow, "numpy", tile_rows=tile)
            _assert_equivalent(reference, result)
            assert np.allclose(result.matrix.to_dense(), da @ db)

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((3, 17), (17, 9)),
        ((24, 5), (5, 24)),
        ((1, 8), (8, 1)),
    ])
    def test_rectangular_matrices(self, shape_a, shape_b):
        rng = np.random.default_rng(42)
        a, da = _random_sparse(rng, shape_a, 0.3)
        b, db = _random_sparse(rng, shape_b, 0.3)
        for flow in kernels.DATAFLOWS:
            reference = kernels.spgemm(a, b, flow, "python")
            result = kernels.spgemm(a, b, flow, "numpy")
            _assert_equivalent(reference, result)
            assert np.allclose(result.matrix.to_dense(), da @ db)

    def test_empty_rows_and_columns(self):
        rng = np.random.default_rng(7)
        dense_a = np.zeros((12, 12))
        dense_b = np.zeros((12, 12))
        # Only a few rows/cols populated; the rest stay structurally empty.
        dense_a[[1, 5], :] = rng.random((2, 12)) * (rng.random((2, 12)) < 0.5)
        dense_b[:, [0, 9]] = rng.random((12, 2)) * (rng.random((12, 2)) < 0.5)
        a = CSRMatrix.from_dense(dense_a)
        b = CSRMatrix.from_dense(dense_b)
        for flow in kernels.DATAFLOWS:
            reference = kernels.spgemm(a, b, flow, "python")
            result = kernels.spgemm(a, b, flow, "numpy")
            _assert_equivalent(reference, result)

    def test_empty_operands(self):
        a = CSRMatrix.empty((6, 4))
        b = CSRMatrix.empty((4, 5))
        for flow in kernels.DATAFLOWS:
            result = kernels.spgemm(a, b, flow, "numpy")
            assert result.partial_products == 0
            assert result.output_nnz == 0
            assert result.matrix.shape == (6, 5)

    def test_dimension_mismatch_raises(self):
        a = CSRMatrix.from_dense(np.eye(3))
        b = CSRMatrix.from_dense(np.eye(4))
        for impl in kernels.IMPLS:
            with pytest.raises(ValueError):
                kernels.spgemm(a, b, "row_wise", impl)

    def test_sort_merge_path_matches_dense_path(self):
        # A shape large enough (25M flattened coordinates vs few hundred
        # partial products) to route through the sort-based merge instead
        # of the dense-bin merge.
        rng = np.random.default_rng(11)
        n = 5000
        rows = rng.integers(0, n, size=60)
        cols = rng.integers(0, n, size=60)
        dense = np.zeros((n, n))
        dense[rows, cols] = rng.random(60)
        a = CSRMatrix.from_dense(dense)
        for flow in ("row_wise", "tiled_gustavson"):
            reference = kernels.spgemm(a, a, flow, "python")
            result = kernels.spgemm(a, a, flow, "numpy")
            _assert_equivalent(reference, result)

    def test_mmh_count_varies_with_tile_rows(self):
        rng = np.random.default_rng(3)
        a, _ = _random_sparse(rng, (20, 20), 0.4)
        counts = [kernels.spgemm(a, a, "tiled_gustavson", "numpy",
                                 tile_rows=t).extra["mmh_instructions"]
                  for t in (1, 2, 4)]
        ref = [kernels.spgemm(a, a, "tiled_gustavson", "python",
                              tile_rows=t).extra["mmh_instructions"]
               for t in (1, 2, 4)]
        assert counts == ref
        assert counts[0] > counts[1] > counts[2]
