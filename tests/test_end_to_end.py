"""End-to-end scenarios exercising the full public API surface together."""

import numpy as np
import pytest

from repro import (
    NeuraChip,
    TILE4,
    TILE16,
    compile_spgemm,
    design_space_sweep,
    load_dataset,
)
from repro.baselines.accelerators import speedup_table
from repro.baselines.workload import SpGEMMWorkloadStats
from repro.hashing import mapping_heatmap
from repro.power import power_breakdown
from repro.sparse.convert import csr_to_csc
from repro.viz.export import format_table, heatmap_to_text, histogram_to_rows


class TestSpGEMMPipeline:
    """Dataset -> compile -> simulate -> compare against baselines -> export."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("email-Enron", max_nodes=96, seed=9)

    def test_full_pipeline(self, dataset):
        a_csr = dataset.adjacency_csr()
        program = compile_spgemm(csr_to_csc(a_csr), a_csr, tile_size=4,
                                 source=dataset.name)
        chip = NeuraChip(TILE16)
        result = chip.run_spgemm(a_csr, source=dataset.name)
        assert result.correct is True
        assert result.report.mmh_instructions == program.n_instructions

        stats = SpGEMMWorkloadStats.from_matrices(dataset.name, a_csr)
        table = speedup_table([stats])
        assert table["MKL"][dataset.name] > 1.0

        rows = histogram_to_rows(result.report.mmh_cpi_histogram)
        rendered = format_table(rows)
        assert dataset.name or rendered  # renders without error

    def test_mapping_heatmap_export(self, dataset):
        heatmap = mapping_heatmap("drhm", dataset.adjacency_csc(),
                                  dataset.adjacency_csr(), n_cores=8, n_mems=8)
        art = heatmap_to_text(heatmap)
        assert len(art.splitlines()) == 8


class TestGCNPipeline:
    def test_gcn_layer_on_two_configs(self):
        dataset = load_dataset("cora", max_nodes=96, seed=3)
        small = NeuraChip(TILE4).run_gcn_layer(dataset, feature_dim=12, hidden_dim=6)
        large = NeuraChip(TILE16).run_gcn_layer(dataset, feature_dim=12, hidden_dim=6)
        assert small.aggregation.correct and large.aggregation.correct
        assert large.aggregation.report.cycles < small.aggregation.report.cycles
        assert np.allclose(small.output, large.output)


class TestDesignSpaceAndPower:
    def test_sweep_and_power_are_consistent(self):
        dataset = load_dataset("p2p-Gnutella31", max_nodes=96, seed=2)
        sweep = design_space_sweep(dataset.adjacency_csr(),
                                   configs=("Tile-4", "Tile-16"),
                                   normalize_to=None)
        assert sweep["Tile-16"]["cycles"] < sweep["Tile-4"]["cycles"]
        assert sweep["Tile-16"]["power"] > sweep["Tile-4"]["power"]
        assert power_breakdown(TILE16).total_power_w > \
            power_breakdown(TILE4).total_power_w
