"""Unit tests for the memory system and torus network models."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.memory import HBMChannel, MemoryController, MemorySystem
from repro.sim.params import SimulationParams
from repro.sim.router import TorusNetwork, interleaved_positions
from repro.sim.stats import StatsCollector


@pytest.fixture
def sim_env():
    sim = Simulator()
    params = SimulationParams()
    stats = StatsCollector()
    return sim, params, stats


class TestHBMChannel:
    def test_read_completes_and_counts_bytes(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        done = []
        channel.access(0x1000, 64, False, lambda: done.append(sim.now))
        sim.run()
        assert done and done[0] > 0
        assert channel.bytes_read == 64

    def test_row_hit_faster_than_miss(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        first = channel.access(0, 32, False, None)
        second = channel.access(32, 32, False, None)   # same DRAM row -> hit
        miss_addr = params.hbm_row_bytes * params.hbm_banks_per_channel * 3
        third = channel.access(miss_addr, 32, False, None)
        assert (second - first) < (third - second) or \
            stats.counters["hbm.row_hits"] >= 1

    def test_bus_serialises_transfers(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        finishes = [channel.access(i * params.hbm_row_bytes, 256, False, None)
                    for i in range(4)]
        assert finishes == sorted(finishes)
        assert finishes[-1] - finishes[0] >= 3 * 256 / params.hbm_bytes_per_cycle_per_channel

    def test_writes_are_posted(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        finish = channel.access(0x2000, 8, True, None)
        assert channel.bytes_written == 8
        assert finish <= params.hbm_row_miss_cycles  # no bank access charged


class TestMemoryController:
    def test_read_callback_fires(self, sim_env):
        sim, params, stats = sim_env
        controller = MemoryController(sim, params, 0,
                                      HBMChannel(sim, params, 0, stats), stats)
        done = []
        controller.read(0x40, 16, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_coalescing_merges_same_line_requests(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        controller = MemoryController(sim, params, 0, channel, stats)
        done = []
        # Two requests to the same coalescing line, issued back to back.
        controller.read(0x100, 8, lambda: done.append("a"))
        controller.read(0x104, 8, lambda: done.append("b"))
        sim.run()
        assert sorted(done) == ["a", "b"]
        assert controller.reads_coalesced == 1
        assert channel.bytes_read == params.coalesce_line_bytes

    def test_request_spanning_lines_reads_both(self, sim_env):
        sim, params, stats = sim_env
        channel = HBMChannel(sim, params, 0, stats)
        controller = MemoryController(sim, params, 0, channel, stats)
        done = []
        line = params.coalesce_line_bytes
        controller.read(line - 4, 8, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert channel.bytes_read == 2 * line

    def test_write_counted(self, sim_env):
        sim, params, stats = sim_env
        controller = MemoryController(sim, params, 0,
                                      HBMChannel(sim, params, 0, stats), stats)
        controller.write(0x80, 8)
        sim.run()
        assert controller.writes_received == 1


class TestMemorySystem:
    def test_interleaving_spreads_addresses_over_channels(self, sim_env):
        sim, params, stats = sim_env
        system = MemorySystem(sim, params, 8, stats)
        line = params.coalesce_line_bytes
        owners = {system.controller_for(i * line).tile_id for i in range(8)}
        assert owners == set(range(8))

    def test_total_traffic_accumulates(self, sim_env):
        sim, params, stats = sim_env
        system = MemorySystem(sim, params, 4, stats)
        system.read(0, 16, lambda: None)
        system.write(1024, 8)
        sim.run()
        assert system.total_bytes_read >= 16
        assert system.total_bytes_written == 8
        assert system.total_traffic_bytes == (system.total_bytes_read
                                              + system.total_bytes_written)


class TestTorusNetwork:
    def test_hops_with_wraparound(self, sim_env):
        sim, params, stats = sim_env
        torus = TorusNetwork(sim, params, 8, 8, stats)
        assert torus.hops((0, 0), (7, 0)) == 1       # wraps around
        assert torus.hops((0, 0), (4, 0)) == 4
        assert torus.hops((1, 1), (3, 6)) == 2 + 3   # dy wraps: min(5, 3)

    def test_send_schedules_arrival_callback(self, sim_env):
        sim, params, stats = sim_env
        torus = TorusNetwork(sim, params, 4, 4, stats)
        arrivals = []
        torus.send((0, 0), (2, 2), 16, lambda: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 1
        assert arrivals[0] >= 4 * params.router_hop_cycles

    def test_latency_grows_with_distance(self, sim_env):
        sim, params, stats = sim_env
        torus = TorusNetwork(sim, params, 8, 8, stats)
        near = torus.latency((0, 0), (1, 0), 16)
        far = torus.latency((0, 0), (4, 4), 16)
        assert far > near

    def test_ingress_contention_serialises_messages(self, sim_env):
        sim, params, stats = sim_env
        torus = TorusNetwork(sim, params, 4, 4, stats)
        arrival_1 = torus.send((0, 0), (1, 1), 16)
        arrival_2 = torus.send((2, 2), (1, 1), 16)
        assert arrival_2 > arrival_1

    def test_flit_accounting(self, sim_env):
        sim, params, stats = sim_env
        torus = TorusNetwork(sim, params, 4, 4, stats)
        torus.send((0, 0), (1, 0), 64)
        assert torus.flits_sent == 64 // params.router_flit_bytes
        assert torus.average_hops_per_flit == pytest.approx(1.0)

    def test_invalid_dimensions(self, sim_env):
        sim, params, stats = sim_env
        with pytest.raises(ValueError):
            TorusNetwork(sim, params, 0, 4, stats)


class TestInterleavedPlacement:
    def test_all_components_get_unique_positions(self):
        cores, mems, width, height = interleaved_positions(16, 16)
        assert len(cores) == 16 and len(mems) == 16
        positions = list(cores.values()) + list(mems.values())
        assert len(set(positions)) == 32
        assert all(0 <= x < width and 0 <= y < height for x, y in positions)

    def test_asymmetric_counts(self):
        cores, mems, _w, _h = interleaved_positions(5, 2)
        assert len(cores) == 5 and len(mems) == 2

    def test_single_component(self):
        cores, mems, width, height = interleaved_positions(1, 0)
        assert cores[0] == (0, 0)
        assert mems == {}
        assert width >= 1 and height >= 1
